"""Client-side tests: the disk spool and the retrying drain loop."""

from __future__ import annotations

import json
import os

import pytest

from repro.serve import (
    ReportSpool,
    RunReport,
    UploadError,
    drain_spool,
    fetch_scores,
    run_and_spool,
    watched_from_scores,
)
from repro.serve.client import REJECTED_DIR, SPOOL_PATTERN
from repro.store.faults import FaultInjector, parse_faults

FAST_RETRY = dict(backoff_base=0.01, backoff_cap=0.05, jitter=0.0)


def _report(seed: int) -> RunReport:
    return RunReport(
        seed=seed,
        failed=False,
        site_obs={0: 1},
        pred_true={},
        stack=None,
        bugs=(),
    )


def _fill(spool: ReportSpool, n: int) -> None:
    for seed in range(n):
        spool.save(_report(seed))


def _drain(spool, server, store, faults=None, **kwargs):
    kwargs = {**FAST_RETRY, **kwargs}
    return drain_spool(
        spool,
        server.url,
        store.manifest.subject,
        store.manifest.table_sha,
        faults=FaultInjector(parse_faults(faults)) if faults else None,
        **kwargs,
    )


class TestSpool:
    def test_round_trip(self, tmp_path):
        spool = ReportSpool(str(tmp_path))
        report = RunReport(
            seed=12,
            failed=True,
            site_obs={3: 2, 1: 1},
            pred_true={7: 2},
            stack=("f", "g"),
            bugs=("bug1",),
        )
        spool.save(report)
        assert spool.pending_seeds() == [12]
        assert spool.load(12) == report

    def test_save_is_atomic(self, tmp_path):
        spool = ReportSpool(str(tmp_path))
        spool.save(_report(1))
        # A stray temp file (crash mid-write) is never listed as pending.
        stray = os.path.join(str(tmp_path), SPOOL_PATTERN.format(seed=2) + ".tmp")
        with open(stray, "w") as handle:
            handle.write("{torn")
        assert spool.pending_seeds() == [1]

    def test_remove_is_idempotent(self, tmp_path):
        spool = ReportSpool(str(tmp_path))
        spool.save(_report(5))
        spool.remove(5)
        spool.remove(5)
        assert len(spool) == 0

    def test_reject_moves_with_reason(self, tmp_path):
        spool = ReportSpool(str(tmp_path))
        spool.save(_report(9))
        spool.reject(9, "table-mismatch", "stale client")
        assert spool.pending_seeds() == []
        rejected = os.path.join(str(tmp_path), REJECTED_DIR)
        name = SPOOL_PATTERN.format(seed=9)
        assert os.path.exists(os.path.join(rejected, name))
        with open(os.path.join(rejected, name + ".reason.json")) as handle:
            assert json.load(handle)["reason"] == "table-mismatch"


class TestRunAndSpool:
    def test_spools_deterministic_reports(
        self, tmp_path, ccrypt_subject, ccrypt_program, full_plan
    ):
        one = ReportSpool(str(tmp_path / "one"))
        two = ReportSpool(str(tmp_path / "two"))
        run_and_spool(ccrypt_subject, ccrypt_program, full_plan, one, 10, seed=5)
        run_and_spool(ccrypt_subject, ccrypt_program, full_plan, two, 10, seed=5)
        assert one.pending_seeds() == two.pending_seeds() == list(range(5, 15))
        for seed in one.pending_seeds():
            assert one.load(seed) == two.load(seed)


class TestDrain:
    def test_plain_drain(self, tmp_path, ccrypt_server):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 25)
        result = _drain(spool, server, store, batch_size=10)
        assert sorted(result.accepted) == list(range(25))
        assert result.duplicate == []
        assert result.retries == 0
        assert len(spool) == 0
        assert store.n_runs == 20  # one full batch committed, 5 queued
        assert service.batcher.queue_depth == 5

    def test_redelivery_is_idempotent(self, tmp_path, ccrypt_server):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 8)
        _drain(spool, server, store)
        _fill(spool, 8)  # client crashed after upload, re-spooled, re-sent
        result = _drain(spool, server, store)
        assert sorted(result.duplicate) == list(range(8))
        assert result.accepted == []
        assert service.batcher.queue_depth == 8

    def test_net_refuse_retries(self, tmp_path, ccrypt_server):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 6)
        result = _drain(
            spool, server, store, faults="net-refuse@0,net-refuse@0#1", batch_size=6
        )
        assert sorted(result.accepted) == list(range(6))
        assert result.retries == 2
        assert len(spool) == 0

    def test_net_refuse_exhausts_budget(self, tmp_path, ccrypt_server):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 3)
        faults = ",".join(f"net-refuse@0#{a}" for a in range(3))
        with pytest.raises(UploadError):
            _drain(spool, server, store, faults=faults, max_attempts=3)
        # Nothing acknowledged, nothing lost.
        assert spool.pending_seeds() == [0, 1, 2]

    def test_server_500_retries(self, tmp_path, ccrypt_server):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 4)
        server._http.injector = FaultInjector(parse_faults("net-500@0"))
        result = _drain(spool, server, store, batch_size=4)
        assert sorted(result.accepted) == list(range(4))
        assert result.retries == 1
        assert len(spool) == 0

    def test_server_disconnect_retries(self, tmp_path, ccrypt_server):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 4)
        server._http.injector = FaultInjector(parse_faults("net-disconnect@0"))
        result = _drain(spool, server, store, batch_size=4)
        assert sorted(result.accepted) == list(range(4))
        assert result.retries >= 1
        assert len(spool) == 0

    def test_server_slow_response_times_out_then_delivers(
        self, tmp_path, ccrypt_server
    ):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 4)
        server._http.injector = FaultInjector(parse_faults("net-slow@0"))
        # SLOW_SECONDS is 1.5, so a 0.5s timeout fires; the slow request
        # still lands server-side, making the retry a duplicate ack.
        result = _drain(spool, server, store, batch_size=4, timeout=0.5)
        assert result.retries >= 1
        assert sorted(result.accepted + result.duplicate) == list(range(4))
        assert len(spool) == 0
        assert service.batcher.queue_depth == 4

    def test_permanent_rejection_moves_to_rejected(self, tmp_path, ccrypt_server):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 2)
        result = drain_spool(
            spool, server.url, store.manifest.subject, "0" * 64, **FAST_RETRY
        )
        assert sorted(result.rejected) == [0, 1]
        assert result.accepted == []
        assert spool.pending_seeds() == []
        rejected = os.path.join(spool.directory, REJECTED_DIR)
        reason_path = os.path.join(
            rejected, SPOOL_PATTERN.format(seed=0) + ".reason.json"
        )
        with open(reason_path) as handle:
            assert json.load(handle)["reason"] == "table-mismatch"
        assert store.n_runs == 0

    def test_dead_server_gives_up_with_spool_intact(self, tmp_path, ccrypt_service):
        store, service = ccrypt_service
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 3)
        with pytest.raises(UploadError):
            drain_spool(
                spool,
                "http://127.0.0.1:9",  # discard port: nothing listens
                store.manifest.subject,
                store.manifest.table_sha,
                max_attempts=2,
                timeout=0.5,
                **FAST_RETRY,
            )
        assert spool.pending_seeds() == [0, 1, 2]

    def test_max_batches_stops_early(self, tmp_path, ccrypt_server):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        _fill(spool, 10)
        result = _drain(spool, server, store, batch_size=3, max_batches=2)
        assert len(result.accepted) == 6
        assert spool.pending_seeds() == [6, 7, 8, 9]


class TestScoresClient:
    def test_fetch_and_watch(self, tmp_path, ccrypt_server, ccrypt_subject,
                             ccrypt_program, full_plan):
        store, service, server = ccrypt_server
        spool = ReportSpool(str(tmp_path / "spool"))
        run_and_spool(ccrypt_subject, ccrypt_program, full_plan, spool, 40)
        _drain(spool, server, store, batch_size=40)
        doc = fetch_scores(server.url, k=5)
        assert doc["n_runs"] == 40
        assert 0 < len(doc["predicates"]) <= 5
        watched = watched_from_scores(doc, k=3)
        assert 0 < len(watched) <= 3
        for index, importance in watched.items():
            assert isinstance(index, int)
            assert 0.0 <= importance <= 1.0
