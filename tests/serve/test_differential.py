"""Differential acceptance: networked collection == local sharded collection.

The service's contract is that a population collected client -> HTTP ->
:class:`CollectionService` -> :class:`ShardStore` is **bit-identical** to
the same seeds collected locally by
:func:`repro.harness.parallel.run_trials_sharded`:

* sufficient statistics -- integer equality, all five subjects;
* scores -- bitwise float equality (``tobytes``), all five subjects;
* ``analyze`` at ``--jobs`` {1, 2} over both stores agrees bitwise;
* the identity survives injected network faults (client-side refusals,
  server 500s, dropped connections, slow responses that force timeout
  retries) and a server kill/restart mid-stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import AnalysisEngine
from repro.core.scores import compute_scores
from repro.harness.parallel import run_trials_sharded
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.serve import CollectionService, FeedbackServer, ReportSpool
from repro.serve.client import drain_spool, run_and_spool
from repro.store import ShardStore
from repro.store.faults import FaultInjector, parse_faults

from .conftest import make_service

#: (cli name, runs) per subject; budgets sized for test wall-clock.
SUBJECT_RUNS = [
    ("moss", 45),
    ("ccrypt", 60),
    ("bc", 50),
    ("exif", 45),
    ("rhythmbox", 45),
    # One factory-made, multi-module subject: the networked path must be
    # bit-identical for manufactured subjects too.
    ("jsonscan-off1", 40),
]

BATCH_RUNS = 20  # server shard size == local chunk_size, so layouts match

_SCORE_FIELDS = (
    "F",
    "S",
    "F_obs",
    "S_obs",
    "failure",
    "context",
    "increase",
    "increase_se",
    "increase_lo",
    "increase_hi",
    "pf",
    "ps",
    "z",
    "z_defined",
    "defined",
)

FAST_RETRY = dict(backoff_base=0.01, backoff_cap=0.05, jitter=0.0)


def _subject(name):
    from repro.cli import SUBJECTS

    return SUBJECTS[name]()


def _local_store(directory, subject, n_runs):
    run_trials_sharded(
        subject,
        n_runs,
        SamplingPlan.full(),
        str(directory),
        seed=0,
        jobs=2,
        chunk_size=BATCH_RUNS,
    )
    return ShardStore.open(str(directory))


def _assert_stores_identical(served: ShardStore, local: ShardStore):
    served_stats = served.sufficient_stats()
    local_stats = local.sufficient_stats()
    for field in ("F", "S", "F_obs", "S_obs"):
        np.testing.assert_array_equal(
            getattr(served_stats, field), getattr(local_stats, field)
        )
    assert served_stats.num_failing == local_stats.num_failing
    assert served_stats.num_successful == local_stats.num_successful

    served_reports, _ = served.load_merged()
    local_reports, _ = local.load_merged()
    served_scores = compute_scores(served_reports)
    local_scores = compute_scores(local_reports)
    for field in _SCORE_FIELDS:
        assert (
            getattr(served_scores, field).tobytes()
            == getattr(local_scores, field).tobytes()
        ), field

    for jobs in (1, 2):
        engine = AnalysisEngine(jobs=jobs)
        got = engine.score_stats(engine.store_stats(served))
        want = engine.score_stats(engine.store_stats(local))
        for field in _SCORE_FIELDS:
            assert (
                getattr(got.scores, field).tobytes()
                == getattr(want.scores, field).tobytes()
            ), (jobs, field)
        np.testing.assert_array_equal(got.pruning.kept, want.pruning.kept)


@pytest.mark.parametrize("name,n_runs", SUBJECT_RUNS)
def test_networked_collection_bit_identical(tmp_path, name, n_runs):
    subject = _subject(name)
    plan = SamplingPlan.full()
    program = subject.build_program()

    local = _local_store(tmp_path / "local", subject, n_runs)

    store, service = make_service(
        tmp_path / "served", subject, program, plan, batch_runs=BATCH_RUNS
    )
    server = FeedbackServer(service, port=0).start()
    try:
        spool = ReportSpool(str(tmp_path / "spool"))
        run_and_spool(subject, program, plan, spool, n_runs, seed=0)
        result = drain_spool(
            spool,
            server.url,
            subject.name,
            program.table.signature(),
            batch_size=17,  # deliberately misaligned with BATCH_RUNS
            **FAST_RETRY,
        )
        assert sorted(result.accepted) == list(range(n_runs))
    finally:
        server.close(drain=True)

    served = ShardStore.open(str(tmp_path / "served"))
    assert served.n_runs == local.n_runs == n_runs
    _assert_stores_identical(served, local)


def test_bit_identical_under_network_faults(
    tmp_path, ccrypt_subject, ccrypt_program, full_plan
):
    """The full fault matrix at once: refused connections on batch 1,
    a 500 on the third POST, a dropped connection on the fourth, and a
    slow first POST that forces a client timeout + duplicate-acked
    retry.  None of it may change a bit of the result."""
    n_runs = 60
    local = _local_store(tmp_path / "local", ccrypt_subject, n_runs)

    store, service = make_service(
        tmp_path / "served", ccrypt_subject, ccrypt_program, full_plan,
        batch_runs=BATCH_RUNS,
    )
    server_faults = FaultInjector(
        parse_faults("net-500@2,net-disconnect@3,net-slow@0")
    )
    server = FeedbackServer(service, port=0, faults=server_faults).start()
    try:
        spool = ReportSpool(str(tmp_path / "spool"))
        run_and_spool(ccrypt_subject, ccrypt_program, full_plan, spool, n_runs)
        result = drain_spool(
            spool,
            server.url,
            ccrypt_subject.name,
            ccrypt_program.table.signature(),
            batch_size=13,
            timeout=0.8,  # < SLOW_SECONDS: the net-slow POST times out
            faults=FaultInjector(parse_faults("net-refuse@1")),
            **FAST_RETRY,
        )
        assert result.retries >= 4
        # The slow POST still landed server-side, so its retry is
        # acknowledged as duplicates -- at-least-once made exact.
        acked = sorted(result.accepted + result.duplicate)
        assert acked == sorted(set(acked))
        assert set(result.accepted) | set(result.duplicate) == set(range(n_runs))
        assert len(spool) == 0
    finally:
        server.close(drain=True)

    served = ShardStore.open(str(tmp_path / "served"))
    assert served.n_runs == n_runs
    _assert_stores_identical(served, local)


def test_bit_identical_across_server_restart(
    tmp_path, ccrypt_subject, ccrypt_program, full_plan
):
    """Kill the server mid-stream (no drain), restart over the same
    store directory, finish the upload: WAL replay makes the final
    population identical to an uninterrupted local collection."""
    n_runs = 60
    local = _local_store(tmp_path / "local", ccrypt_subject, n_runs)

    spool = ReportSpool(str(tmp_path / "spool"))
    run_and_spool(ccrypt_subject, ccrypt_program, full_plan, spool, n_runs)

    store, service = make_service(
        tmp_path / "served", ccrypt_subject, ccrypt_program, full_plan,
        batch_runs=BATCH_RUNS,
    )
    server = FeedbackServer(service, port=0).start()
    drain_args = (spool, server.url, ccrypt_subject.name,
                  ccrypt_program.table.signature())
    try:
        # First session: two batches of 17, then the "machine dies" --
        # the HTTP loop stops with NO drain and NO graceful close.
        drain_spool(*drain_args, batch_size=17, max_batches=2, **FAST_RETRY)
        assert len(spool) == n_runs - 34
    finally:
        server._http.shutdown()
        server._http.server_close()

    committed_before = ShardStore.open(str(tmp_path / "served")).n_runs
    assert committed_before < n_runs  # some acked reports were WAL-only

    # Restart: a fresh service over the same directory replays the WAL.
    store2, service2 = make_service(
        tmp_path / "served", ccrypt_subject, ccrypt_program, full_plan,
        batch_runs=BATCH_RUNS,
    )
    server2 = FeedbackServer(service2, port=0).start()
    try:
        result = drain_spool(
            spool, server2.url, ccrypt_subject.name,
            ccrypt_program.table.signature(), batch_size=17, **FAST_RETRY,
        )
        assert len(spool) == 0
        assert set(result.accepted) | set(result.duplicate) == set(
            range(34, n_runs)
        )
    finally:
        server2.close(drain=True)

    served = ShardStore.open(str(tmp_path / "served"))
    assert served.n_runs == n_runs
    recovered = served.recover()
    assert recovered == ([], [])
    audit = served.audit()
    assert audit.runs_lost == 0
    _assert_stores_identical(served, local)
