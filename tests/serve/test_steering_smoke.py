"""Steering smoke test: a real daemon steering real client processes.

The CI ``steering-smoke`` scenario: one collection daemon as a real
subprocess with a lenient stopping policy, two steered ``repro-cbi
submit`` clients (one fixed round, one ``--until-converged``), a
SIGKILL + restart proving the steering document survives recovery, and
a graceful drain -- after which the store must recover and audit clean.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.store import ShardStore

pytestmark = pytest.mark.slow

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return env


def _cli(*argv, **kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **kwargs,
    )


def _start_server(store_dir, *extra):
    process = _cli(
        "serve", str(store_dir), "--port", "0", "--batch-runs", "20",
        "--sampling", "full", "--refit-runs", "20",
        "--stop-epsilon", "1.0", "--stop-min-runs", "60",
        "--stop-min-failing", "5", *extra,
    )
    line = process.stdout.readline().strip()
    assert line.startswith("serving ccrypt on http://"), line
    url = line.split(" on ", 1)[1].split(" ", 1)[0]
    return process, url


def _get(url, path, timeout=5.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.loads(response.read())


def test_steering_smoke(tmp_path):
    store_dir = tmp_path / "store"
    server, url = _start_server(store_dir, "--subject", "ccrypt")
    try:
        # The daemon publishes a steering document from the first breath
        # (epoch 0: full-rate defaults, nothing converged yet).
        doc = _get(url, "/steering")
        assert doc["schema"] == "repro-steering/v1"
        assert doc["epoch"] == 0
        assert doc["converged"] is False
        assert all(0.0 < rate <= 1.0 for rate in doc["rates"])

        # Client one: a single steered round over seeds 0..19.
        first = _cli(
            "submit", "--subject", "ccrypt", "--url", url,
            "--runs", "20", "--seed", "0", "--steered",
            "--spool", str(tmp_path / "spool-a"), "--batch-size", "10",
            "--sampling", "full",
        )
        out, err = first.communicate(timeout=180)
        assert first.returncode == 0, err
        assert "submitted: 20 accepted" in out

        # Client two: steered rounds from seed 20 until the daemon's
        # stopping rule flips; rounds keep seeds contiguous so every
        # batch commits.
        until = _cli(
            "submit", "--subject", "ccrypt", "--url", url,
            "--runs", "20", "--seed", "20", "--until-converged",
            "--max-rounds", "10",
            "--spool", str(tmp_path / "spool-b"), "--batch-size", "10",
            "--sampling", "full",
        )
        out, err = until.communicate(timeout=600)
        assert until.returncode == 0, err
        assert out.startswith("converged after "), out

        health = _get(url, "/healthz")
        assert health["steering"] is True
        assert health["converged"] is True
        assert health["steering_epoch"] >= 60
        served_epoch = health["steering_epoch"]

        # Kill -9: no drain, no goodbye.
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    # Restart over the same store: the recovered daemon re-fits and
    # re-serves a steering document for the recovered population.
    server, url = _start_server(store_dir)
    try:
        doc = _get(url, "/steering")
        assert doc["epoch"] > 0
        assert doc["converged"] is True
        assert doc["version"].endswith(f"/{doc['epoch']}")

        server.send_signal(signal.SIGTERM)
        out, err = server.communicate(timeout=60)
        assert server.returncode == 0, err
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    store = ShardStore.open(str(store_dir))
    assert store.n_runs >= served_epoch
    assert store.recover() == ([], [])
    audit = store.audit()
    assert audit.runs_lost == 0
    # Provenance: every committed batch is logged, and at least one
    # carries a non-empty steering version list from the steered clients.
    log_path = os.path.join(str(store_dir), "steering_log.jsonl")
    entries = [json.loads(line) for line in open(log_path) if line.strip()]
    assert sum(entry["n_runs"] for entry in entries) == store.n_runs
    assert any(entry["versions"] for entry in entries)
