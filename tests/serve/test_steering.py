"""Steering acceptance: the closed loop, proven end to end.

The daemon's contract for closed-loop adaptive collection:

* **provenance** -- every committed batch records exactly the steering
  version the producing client fetched (all five subjects);
* **safety** -- served rates never leave ``[MIN_ADAPTIVE_RATE, 1.0]``;
* **durability** -- an abrupt daemon death (no drain, no close) followed
  by a restart re-serves a steering document refit from the recovered
  store, identical to an offline refit over the same snapshot;
* **compat** -- unsteered collection stays bit-identical to the
  pre-steering protocol in both directions (old client/new server and
  new client/old server);
* **differential** -- a steered client whose rates were pinned to an
  offline-trained table produces byte-identical reports to local
  ``sampling="adaptive"`` collection over the same seeds.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.stopping import StoppingPolicy
from repro.harness.experiment import build_plan
from repro.instrument.sampling import MIN_ADAPTIVE_RATE, SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.serve import FeedbackServer, ReportSpool
from repro.serve.client import (
    collect_and_submit,
    run_and_spool,
    steered_collect_and_submit,
    submit_until_converged,
)
from repro.serve.steering import (
    STEERING_LOG_NAME,
    STEERING_NAME,
    fetch_steering,
    fit_steering,
    plan_from_steering,
)
from repro.store import ShardStore

from .conftest import make_service

FAST_RETRY = dict(backoff_base=0.01, backoff_cap=0.05, jitter=0.0)

SUBJECT_NAMES = ["moss", "ccrypt", "bc", "exif", "rhythmbox"]


def _subject(name):
    from repro.cli import SUBJECTS

    return SUBJECTS[name]()


def _read_steering_log(store_dir):
    path = os.path.join(str(store_dir), STEERING_LOG_NAME)
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_every_batch_carries_producing_version(tmp_path, name):
    """Two steered rounds; every committed batch's provenance log entry
    names exactly the steering version its producing client fetched."""
    subject = _subject(name)
    program = instrument_source(subject.source(), subject.name)
    store, service = make_service(
        tmp_path / "store", subject, program, SamplingPlan.full(),
        batch_runs=8, refit_runs=8,
    )
    server = FeedbackServer(service, port=0).start()
    round_versions = []
    try:
        for round_index in range(2):
            document = fetch_steering(server.url)
            round_versions.append(document.version)
            result = steered_collect_and_submit(
                subject, program, server.url, str(tmp_path / f"spool{round_index}"),
                n_runs=24, seed=round_index * 24, **FAST_RETRY,
            )
            assert len(result.accepted) == 24
    finally:
        server.close(drain=True)

    # Epochs advanced between rounds, so the two fetched versions differ.
    assert round_versions[0] != round_versions[1]
    entries = _read_steering_log(tmp_path / "store")
    assert len(entries) == 48 // 8
    for i, entry in enumerate(entries):
        assert entry["versions"] == [round_versions[i // 3]]
        assert entry["n_runs"] == 8
        assert entry["filename"]


def test_served_rates_never_below_floor(tmp_path, ccrypt_subject, ccrypt_program):
    store, service = make_service(
        tmp_path / "store", ccrypt_subject, ccrypt_program, SamplingPlan.full(),
        batch_runs=50, refit_runs=50,
    )
    server = FeedbackServer(service, port=0).start()
    try:
        collect_and_submit(
            ccrypt_subject, ccrypt_program, SamplingPlan.full(), server.url,
            str(tmp_path / "spool"), n_runs=150, **FAST_RETRY,
        )
        document = fetch_steering(server.url)
    finally:
        server.close(drain=True)

    rates = np.asarray(document.rates)
    assert rates.size == ccrypt_program.table.n_sites
    assert float(rates.min()) >= MIN_ADAPTIVE_RATE
    assert float(rates.max()) <= 1.0

    # Push the fit hard enough that hot sites actually hit the floor:
    # a sub-run sample target clips every reached site's rate to the
    # minimum rather than below it.
    reopened = ShardStore.open(str(tmp_path / "store"))
    totals = np.zeros(ccrypt_program.table.n_sites, dtype=np.int64)
    for reports, _ in reopened.iter_reports():
        totals += np.asarray(reports.site_counts.sum(axis=0)).ravel().astype(np.int64)
    forced = fit_steering(
        reopened, ccrypt_subject.name, totals, target_samples=0.5,
    )
    forced_rates = np.asarray(forced.rates)
    reached = totals > 0
    assert float(forced_rates.min()) >= MIN_ADAPTIVE_RATE
    assert np.any(forced_rates[reached] == MIN_ADAPTIVE_RATE)


def test_restart_reserves_refit_from_recovered_store(
    tmp_path, ccrypt_subject, ccrypt_program, full_plan
):
    """Kill the daemon abruptly mid-stream (no drain, no graceful close);
    a restart over the same directory must serve a steering document
    identical to an offline refit of the recovered snapshot."""
    n_runs = 60
    spool = ReportSpool(str(tmp_path / "spool"))
    run_and_spool(ccrypt_subject, ccrypt_program, full_plan, spool, n_runs)

    store, service = make_service(
        tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan,
        batch_runs=20, refit_runs=20,
    )
    server = FeedbackServer(service, port=0).start()
    try:
        from repro.serve.client import drain_spool

        drain_spool(
            spool, server.url, ccrypt_subject.name,
            ccrypt_program.table.signature(), batch_size=17, max_batches=2,
            **FAST_RETRY,
        )
    finally:
        # The machine dies: no drain, no close(), buffered reports lost
        # to everything but the WAL.
        server._http.shutdown()
        server._http.server_close()

    store2, service2 = make_service(
        tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan,
        batch_runs=20, refit_runs=20,
    )
    server2 = FeedbackServer(service2, port=0).start()
    try:
        document = fetch_steering(server2.url)
        # The restart refit over exactly the committed snapshot: one
        # full batch; the WAL-replayed tail (14 runs) is re-queued but
        # stays pending until the next full batch or a drain.
        snapshot = ShardStore.open(str(tmp_path / "store"))
        assert snapshot.n_runs == 20
        assert document.epoch == snapshot.n_runs
        assert document.converged is False
        totals = np.zeros(ccrypt_program.table.n_sites, dtype=np.int64)
        for reports, _ in snapshot.iter_reports():
            totals += (
                np.asarray(reports.site_counts.sum(axis=0)).ravel().astype(np.int64)
            )
        offline = fit_steering(
            snapshot, ccrypt_subject.name, totals, policy=StoppingPolicy(),
        )
        assert json.dumps(document.to_wire(), sort_keys=True) == json.dumps(
            offline.to_wire(), sort_keys=True
        )
    finally:
        server2.close(drain=True)

    # The drain committed the replayed tail (14 runs, below the refit
    # cadence of 20, so the persisted document keeps the restart fit).
    final = ShardStore.open(str(tmp_path / "store"))
    assert final.n_runs == 34  # nothing acknowledged was lost
    with open(os.path.join(str(tmp_path / "store"), STEERING_NAME)) as handle:
        persisted = json.load(handle)
    assert persisted == document.to_wire()


class TestCompat:
    def test_old_server_falls_back_unstamped(
        self, tmp_path, ccrypt_subject, ccrypt_program, full_plan
    ):
        """A steering-disabled server 404s `/steering`; the steered
        client falls back to its local plan and the collected store is
        bit-identical to the pre-steering protocol."""
        store, service = make_service(
            tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan,
            batch_runs=20, steering=False,
        )
        server = FeedbackServer(service, port=0).start()
        try:
            assert fetch_steering(server.url) is None
            assert service.health_payload()["steering"] is False
            result = steered_collect_and_submit(
                ccrypt_subject, ccrypt_program, server.url,
                str(tmp_path / "spool"), n_runs=40,
                fallback_plan=full_plan, **FAST_RETRY,
            )
            assert sorted(result.accepted) == list(range(40))
        finally:
            server.close(drain=True)
        # No steering document, no provenance log, no stamped batches.
        assert not os.path.exists(os.path.join(str(tmp_path / "store"), STEERING_NAME))
        assert not os.path.exists(
            os.path.join(str(tmp_path / "store"), STEERING_LOG_NAME)
        )

    def test_unstamped_spool_bytes_identical_to_pre_steering(
        self, tmp_path, ccrypt_subject, ccrypt_program, full_plan
    ):
        """`run_and_spool` without a steering version writes wire bytes
        with no trace of the steering field -- the exact pre-steering
        client output."""
        spool = ReportSpool(str(tmp_path / "spool"))
        run_and_spool(ccrypt_subject, ccrypt_program, full_plan, spool, 5)
        for seed in spool.pending_seeds():
            with open(spool._path(seed), "r", encoding="utf-8") as handle:
                spec = json.load(handle)
            assert "steering" not in spec

    def test_old_client_against_steering_server(
        self, tmp_path, ccrypt_subject, ccrypt_program, full_plan
    ):
        """A pre-steering client (plain collect_and_submit, no stamp)
        is accepted unchanged; its batches log an empty version list."""
        store, service = make_service(
            tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan,
            batch_runs=20, refit_runs=20,
        )
        server = FeedbackServer(service, port=0).start()
        try:
            result = collect_and_submit(
                ccrypt_subject, ccrypt_program, full_plan, server.url,
                str(tmp_path / "spool"), n_runs=40, **FAST_RETRY,
            )
            assert sorted(result.accepted) == list(range(40))
        finally:
            server.close(drain=True)
        entries = _read_steering_log(tmp_path / "store")
        assert len(entries) == 2
        assert all(entry["versions"] == [] for entry in entries)


def test_pinned_rates_bit_identical_to_local_adaptive(
    tmp_path, ccrypt_subject, ccrypt_program
):
    """The acceptance differential: pin the daemon's rates to the
    offline-trained adaptive table (by committing the training
    population), then collect steered.  Every steered report must be
    byte-identical to the local ``sampling="adaptive"`` report for the
    same seed, modulo only the provenance stamp."""
    training_runs = 40
    n_runs = 50
    # Local side: the paper's offline training at the experiment's
    # canonical training seed base.
    local_plan = build_plan(
        ccrypt_subject, ccrypt_program, "adaptive",
        training_runs=training_runs, seed=0,
    )

    # Server side: commit the *same* training population (same seeds,
    # full sampling), so the refit sees identical mean reach counts.
    store, service = make_service(
        tmp_path / "store", ccrypt_subject, ccrypt_program, SamplingPlan.full(),
        batch_runs=training_runs, refit_runs=training_runs,
    )
    server = FeedbackServer(service, port=0).start()
    try:
        collect_and_submit(
            ccrypt_subject, ccrypt_program, SamplingPlan.full(), server.url,
            str(tmp_path / "train-spool"), n_runs=training_runs,
            seed=777_000, **FAST_RETRY,
        )
        document = fetch_steering(server.url)
    finally:
        server.close(drain=True)

    # Identical training evidence -> bitwise identical rate tables,
    # surviving the JSON wire round trip.
    steered_plan = plan_from_steering(document)
    np.testing.assert_array_equal(steered_plan.site_rates, local_plan.site_rates)

    local_spool = ReportSpool(str(tmp_path / "local-spool"))
    run_and_spool(ccrypt_subject, ccrypt_program, local_plan, local_spool, n_runs)
    steered_spool = ReportSpool(str(tmp_path / "steered-spool"))
    run_and_spool(
        ccrypt_subject, ccrypt_program, steered_plan, steered_spool, n_runs,
        steering_version=document.version,
    )
    assert local_spool.pending_seeds() == steered_spool.pending_seeds()
    for seed in local_spool.pending_seeds():
        with open(local_spool._path(seed), "rb") as handle:
            local_bytes = handle.read()
        with open(steered_spool._path(seed), "r", encoding="utf-8") as handle:
            steered_spec = json.load(handle)
        assert steered_spec.pop("steering") == document.version
        local_spec = json.loads(local_bytes)
        assert steered_spec == local_spec
        # Byte-level: re-canonicalising the stamped report without its
        # stamp reproduces the local file exactly.
        assert (
            json.dumps(steered_spec, sort_keys=True) + "\n"
        ).encode() == local_bytes


def test_submit_until_converged_drains_to_verdict(
    tmp_path, ccrypt_subject, ccrypt_program, full_plan
):
    """The closed loop ends itself: steered rounds run until the
    daemon's CI-based stopping rule flips ``converged``."""
    policy = StoppingPolicy(min_runs=60, min_failing=5, epsilon=1.0, top_k=3)
    store, service = make_service(
        tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan,
        batch_runs=20, refit_runs=20, stopping=policy,
    )
    server = FeedbackServer(service, port=0).start()
    try:
        session = submit_until_converged(
            ccrypt_subject, ccrypt_program, server.url, str(tmp_path / "spool"),
            runs_per_round=20, max_rounds=10, **FAST_RETRY,
        )
        health = service.health_payload()
    finally:
        server.close(drain=True)

    assert session.converged
    assert session.runs >= policy.min_runs
    assert session.final_epoch >= policy.min_runs
    assert health["steering"] is True
    assert health["converged"] is True
    assert health["steering_epoch"] == session.final_epoch
