"""Smoke-run every script in examples/ at tiny scale.

Each example honours ``REPRO_EXAMPLE_RUNS`` (and the online monitor
additionally ``REPRO_EXAMPLE_REPLAYS``), so the full demo narrative
executes in seconds per script.  The assertions are deliberately
shallow -- exit status and a non-empty stdout -- because the examples'
statistical claims need the full run counts; what this pins is that
every import, API call and format string in the examples still works.
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
EXAMPLES = sorted(glob.glob(os.path.join(REPO_ROOT, "examples", "*.py")))

#: Trial counts small enough to finish fast, large enough that every
#: subject still sees a handful of failures (the examples tolerate
#: sparse populations; they just print shorter tables).
TINY_RUNS = "120"
TINY_REPLAYS = "20"


def test_examples_directory_is_covered():
    assert len(EXAMPLES) == 8, "new example? add it to the smoke run"


@pytest.mark.parametrize("script", EXAMPLES, ids=[os.path.basename(p) for p in EXAMPLES])
def test_example_runs_clean_at_tiny_scale(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["REPRO_EXAMPLE_RUNS"] = TINY_RUNS
    env["REPRO_EXAMPLE_REPLAYS"] = TINY_REPLAYS
    result = subprocess.run(
        [sys.executable, script],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{os.path.basename(script)} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), "examples narrate what they show"
