"""Execute every fenced Python block in README.md and docs/*.md.

Documentation snippets rot silently; this test makes each one a unit
test.  Blocks within one page run in order, sharing a namespace, so a
page may build on its own earlier snippets (each committed block is
also written to be self-contained).
"""

from __future__ import annotations

import glob
import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _doc_pages():
    pages = [
        os.path.join(REPO_ROOT, "README.md"),
        os.path.join(REPO_ROOT, "EXPERIMENTS.md"),
    ]
    pages.extend(sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md"))))
    return pages


def _python_blocks(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    blocks = []
    for match in _BLOCK_RE.finditer(text):
        lineno = text[: match.start()].count("\n") + 2  # first code line
        blocks.append((lineno, match.group(1)))
    return blocks


PAGES_WITH_BLOCKS = [p for p in _doc_pages() if _python_blocks(p)]


def test_some_pages_carry_executable_snippets():
    # The doctest net must actually cover something; README.md,
    # docs/OBSERVABILITY.md, and docs/MEASURES.md all commit to
    # executable examples.
    covered = {os.path.basename(p) for p in PAGES_WITH_BLOCKS}
    assert "README.md" in covered
    assert "OBSERVABILITY.md" in covered
    assert "MEASURES.md" in covered
    assert "SERVICE.md" in covered
    assert "EXPERIMENTS.md" in covered


@pytest.mark.parametrize(
    "page", PAGES_WITH_BLOCKS, ids=[os.path.relpath(p, REPO_ROOT) for p in PAGES_WITH_BLOCKS]
)
def test_page_snippets_execute(page):
    namespace = {"__name__": "__docs__"}
    for lineno, source in _python_blocks(page):
        label = f"{os.path.relpath(page, REPO_ROOT)}:{lineno}"
        code = compile(source, label, "exec")
        exec(code, namespace)  # failures point at the page and line
