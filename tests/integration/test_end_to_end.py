"""End-to-end experiments: each subject's known bugs must be isolable.

These use the session-scoped fixtures from conftest (a few hundred runs
per subject), so assertions are about *shape*, not exact counts.
"""

import numpy as np
import pytest

from repro.core.truth import bugs_covered, cooccurrence_table, dominant_bug


def _selected(experiment):
    return [s.predicate.index for s in experiment.elimination.selected]


def _dominated_bugs(experiment):
    """Bugs that are the dominant co-occurrence of some selected predictor."""
    reports, truth = experiment.reports, experiment.truth
    out = set()
    for idx in _selected(experiment):
        dom = dominant_bug(reports, truth, idx)
        if dom is not None:
            out.add(dom[0])
    return out


class TestFunnel:
    def test_pruning_removes_vast_majority(self, moss_experiment):
        """Table 2's shape: Increase>0 discards ~99% of predicates."""
        summary = moss_experiment.summary()
        assert summary["initial_predicates"] > 5000
        assert summary["after_increase_pruning"] < summary["initial_predicates"] * 0.05

    def test_elimination_reduces_to_a_handful(self, moss_experiment):
        summary = moss_experiment.summary()
        assert summary["after_elimination"] <= 15
        assert summary["after_elimination"] < summary["after_increase_pruning"]

    def test_every_selected_predictor_was_a_pruning_survivor(self, moss_experiment):
        kept = set(np.flatnonzero(moss_experiment.pruning.kept).tolist())
        assert set(_selected(moss_experiment)) <= kept


class TestMossValidation:
    def test_common_bugs_have_dominant_predictors(self, moss_experiment):
        """The Section 4.1 result: each bug that causes enough failures
        gets a predictor whose failing runs spike at that bug."""
        reports, truth = moss_experiment.reports, moss_experiment.truth
        dominated = _dominated_bugs(moss_experiment)
        profile_sizes = {
            b: int(truth.bug_profile(b, reports).sum()) for b in truth.bug_ids
        }
        big_bugs = {b for b, n in profile_sizes.items() if n >= 15 and b != "moss7"}
        missing = big_bugs - dominated
        assert len(missing) <= 1, (
            f"bugs {missing} have >=15 failures but no dominant "
            f"predictor (dominated={dominated}, sizes={profile_sizes})"
        )

    def test_selected_predictors_cover_all_triggered_bugs(self, moss_experiment):
        """Lemma 3.1 in the field: every triggered bug whose profile
        intersects the predicated runs is covered by a selection."""
        reports, truth = moss_experiment.reports, moss_experiment.truth
        covered = bugs_covered(reports, truth, _selected(moss_experiment))
        for bug in truth.triggered_bugs(reports):
            profile = truth.bug_profile(bug, reports)
            intersects = any(
                (reports.true_mask(p) & profile).any()
                for p in np.flatnonzero(moss_experiment.pruning.kept)
            )
            if intersects:
                assert bug in covered

    def test_untriggered_bug_is_absent(self, moss_experiment):
        """moss8 never triggers, so no predictor can (or should) point
        at it -- 'there is no way our algorithm can find causes of bugs
        that do not occur'."""
        reports, truth = moss_experiment.reports, moss_experiment.truth
        assert not truth.bug_profile("moss8", reports).any()

    def test_harmless_overrun_has_no_dedicated_predictor(self, moss_experiment):
        """moss7 occurs in many runs but never causes a failure by
        itself; its failing co-occurrences come from other bugs."""
        assert "moss7" not in _dominated_bugs(moss_experiment)


class TestSingleBugSubjects:
    def test_ccrypt_predictor_points_at_eof(self, ccrypt_experiment):
        selected = ccrypt_experiment.elimination.selected
        assert selected, "ccrypt must yield at least one predictor"
        top = selected[0]
        assert top.effective.row.increase > 0.3
        dom = dominant_bug(
            ccrypt_experiment.reports, ccrypt_experiment.truth, top.predicate.index
        )
        assert dom is not None and dom[0] == "ccrypt1"

    def test_ccrypt_crash_is_deterministic(self, ccrypt_experiment):
        reports, truth = ccrypt_experiment.reports, ccrypt_experiment.truth
        occurred = truth.occurrence_mask("ccrypt1")
        assert (occurred == (occurred & reports.failed)).all()

    def test_bc_predictor_relates_counts(self, bc_experiment):
        selected = bc_experiment.elimination.selected
        assert selected
        dom = dominant_bug(
            bc_experiment.reports, bc_experiment.truth, selected[0].predicate.index
        )
        assert dom is not None and dom[0] == "bc1"

    def test_bc_crash_stacks_do_not_name_the_culprit(self, bc_experiment):
        """Section 4.2.2: no useful information on the stack -- the
        overrun is in more_arrays but crashes surface elsewhere."""
        reports = bc_experiment.reports
        stacks = [s for s in reports.stacks if s is not None]
        assert stacks
        in_more_arrays = sum(1 for s in stacks if s[-2:-1] == ("more_arrays",))
        assert in_more_arrays / len(stacks) < 0.5


class TestMultiBugSubjects:
    def test_exif_distinct_bugs_distinct_predictors(self, exif_experiment):
        dominated = _dominated_bugs(exif_experiment)
        assert "exif1" in dominated
        assert "exif2" in dominated

    def test_rhythmbox_races_isolated(self, rhythmbox_experiment):
        dominated = _dominated_bugs(rhythmbox_experiment)
        assert "rb1" in dominated
        assert "rb2" in dominated

    def test_rhythmbox_stacks_bottom_out_in_event_loop(self, rhythmbox_experiment):
        """Every crash goes through the unchanging main loop."""
        stacks = [s for s in rhythmbox_experiment.reports.stacks if s]
        assert stacks
        assert all("main_loop" in s or "main" in s for s in stacks)


class TestTruthIntegrity:
    @pytest.mark.parametrize(
        "fixture",
        [
            "moss_experiment",
            "ccrypt_experiment",
            "bc_experiment",
            "exif_experiment",
            "rhythmbox_experiment",
        ],
    )
    def test_every_failure_is_attributed(self, fixture, request):
        """No failing run without a recorded bug: the oracle and the
        seeded bugs fully explain every failure."""
        exp = request.getfixturevalue(fixture)
        reports, truth = exp.reports, exp.truth
        for i in range(reports.n_runs):
            if reports.failed[i]:
                assert truth.occurrences[i], f"run {i} failed with no bug recorded"
