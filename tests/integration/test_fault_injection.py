"""Acceptance tests for fault-tolerant sharded collection.

The pinned property: SIGKILL one worker and corrupt one shard
mid-collection; the run completes, quarantines exactly the bad shard,
retries the lost seed range, and the final ``Importance`` scores are
bit-identical to an uninjected run with the same seeds.
"""

import numpy as np
import pytest

from repro.core.io import load_shard_stats
from repro.core.importance import importance_scores
from repro.store import Fault, StaleManifestError, SufficientStats

from tests.conftest import collect_tiny_store

#: 120 trials in 4 chunks of 30, under genuine (uniform) sampling so the
#: retried chunks must reproduce the sampler decision stream exactly.
_N_RUNS = 120
_CHUNK = 30


def _collect(tmp_path, name, faults=()):
    return collect_tiny_store(
        tmp_path / name,
        n_runs=_N_RUNS,
        chunk_size=_CHUNK,
        faults=faults,
    )


class TestKillAndCorruptAcceptance:
    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("fault-acceptance")
        faults = (Fault("kill-worker", chunk=1), Fault("flip-bytes", chunk=2))
        injected = _collect(tmp_path, "injected", faults=faults)
        clean = _collect(tmp_path, "clean")
        return injected, clean

    def test_run_completes_despite_faults(self, stores):
        injected, _ = stores
        assert injected.n_shards == _N_RUNS // _CHUNK
        assert injected.n_runs == _N_RUNS
        report = injected.last_collection
        assert report.worker_deaths == 1
        assert report.corrupt_shards == 1
        assert report.retries == 2
        assert report.attempts == report.n_chunks + report.retries

    def test_exactly_the_bad_shard_is_quarantined(self, stores):
        injected, _ = stores
        records = injected.quarantined()
        assert len(records) == 1
        (record,) = records
        assert record["reason"] == "failed-verification"
        # flip-bytes hit chunk 2, whose seed range starts at 60.
        assert record["seed_start"] == 2 * _CHUNK
        assert "checksum mismatch" in record["detail"]

    def test_lost_seed_ranges_were_retried(self, stores):
        injected, _ = stores
        events = injected.read_log()
        retried = [e for e in events if e["event"] == "chunk-retry"]
        assert {e["chunk"] for e in retried} == {1, 2}
        # Both chunks eventually committed.
        committed = [e for e in events if e["event"] == "commit"]
        assert len(committed) == _N_RUNS // _CHUNK

    def test_importance_bit_identical_to_uninjected_run(self, stores):
        injected, clean = stores
        a = importance_scores(injected.compute_scores())
        b = importance_scores(clean.compute_scores())
        np.testing.assert_array_equal(a.importance, b.importance)
        np.testing.assert_array_equal(a.sensitivity, b.sensitivity)
        np.testing.assert_array_equal(a.lo, b.lo)
        np.testing.assert_array_equal(a.hi, b.hi)

    def test_merged_population_identical_to_uninjected_run(self, stores):
        injected, clean = stores
        a, a_truth = injected.load_merged()
        b, b_truth = clean.load_merged()
        assert a.failed.tolist() == b.failed.tolist()
        assert (a.true_counts != b.true_counts).nnz == 0
        assert (a.site_counts != b.site_counts).nnz == 0
        assert a.stacks == b.stacks
        assert a_truth.occurrences == b_truth.occurrences


class TestGracefulDegradation:
    def test_post_commit_loss_is_quarantined_not_fatal(self, tmp_path):
        """stale-manifest deletes a committed shard; audit() downgrades
        the loss to a quarantine record and scoring proceeds over the
        survivors, bit-identical to a clean collection of just those
        seed ranges."""
        store = _collect(
            tmp_path, "stale", faults=(Fault("stale-manifest", chunk=1),)
        )
        with pytest.raises(StaleManifestError, match="audit"):
            store.sufficient_stats()

        audit = store.audit()
        assert [r.reason for r in audit.quarantined] == ["missing-file"]
        assert audit.runs_lost == _CHUNK
        assert store.n_runs == _N_RUNS - _CHUNK

        # Survivors score exactly like the same shards of a clean run.
        clean = _collect(tmp_path, "clean")
        expected = None
        for entry, path in zip(clean.manifest.shards, clean.shard_paths()):
            if entry.seed_start == _CHUNK:  # the lost range
                continue
            F, S, F_obs, S_obs, nf, ns, _ = load_shard_stats(path)
            part = SufficientStats(F, S, F_obs, S_obs, nf, ns)
            # v3 stats are read-only mmap views; seed a writable copy.
            expected = part.materialized() if expected is None else expected.add(part)
        got = store.sufficient_stats()
        np.testing.assert_array_equal(got.F, expected.F)
        np.testing.assert_array_equal(got.S, expected.S)
        np.testing.assert_array_equal(got.F_obs, expected.F_obs)
        np.testing.assert_array_equal(got.S_obs, expected.S_obs)
        assert got.num_failing == expected.num_failing
        assert got.num_successful == expected.num_successful

    def test_duplicate_upload_surfaces_as_orphan_never_counts(self, tmp_path):
        """duplicate-shard lands an unregistered copy in the directory;
        it is reported by audit but never double-counted."""
        store = _collect(
            tmp_path, "dup", faults=(Fault("duplicate-shard", chunk=0),)
        )
        assert store.n_runs == _N_RUNS  # the copy was never counted
        audit = store.audit()
        assert audit.quarantined == []
        assert audit.orphans == ["shard-00000000-dup.npz"]
        # Scores are unaffected by the orphan's presence.
        clean = _collect(tmp_path, "clean")
        np.testing.assert_array_equal(
            importance_scores(store.compute_scores()).importance,
            importance_scores(clean.compute_scores()).importance,
        )
