"""Tests for the trial runner and adaptive-rate training."""

import random

import numpy as np
import pytest

from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.harness.runner import collect_site_means, run_trials
from repro.subjects.base import Subject, record_bug

#: A tiny deterministic subject: fails (crashes) when the input is
#: negative, records 'neg' as the bug.
_SOURCE = '''
from repro.subjects.base import record_bug

def main(value):
    if value < 0:
        record_bug("neg")
        raise ValueError("negative input")
    total = 0
    for i in range(value % 7):
        total += i
    return total
'''


class TinySubject(Subject):
    name = "tiny"
    entry = "main"
    bug_ids = ("neg",)

    def source(self):
        return _SOURCE

    def generate_input(self, rng: random.Random):
        return rng.randint(-2, 10)


@pytest.fixture(scope="module")
def tiny_program():
    return instrument_source(TinySubject().source(), "tiny")


class TestRunTrials:
    def test_reports_align_with_truth(self, tiny_program):
        subject = TinySubject()
        reports, truth = run_trials(
            subject, tiny_program, 200, SamplingPlan.full(), seed=0
        )
        assert reports.n_runs == 200 == truth.n_runs
        for i in range(200):
            if reports.failed[i]:
                assert truth.occurrences[i] == frozenset({"neg"})
            else:
                assert not truth.occurrences[i]

    def test_failing_runs_carry_stacks(self, tiny_program):
        subject = TinySubject()
        reports, _ = run_trials(subject, tiny_program, 100, SamplingPlan.full(), seed=0)
        for i in range(100):
            if reports.failed[i]:
                assert reports.stacks[i] is not None
                assert reports.stacks[i][-1] == "ValueError"
            else:
                assert reports.stacks[i] is None

    def test_seeded_reproducibility(self, tiny_program):
        subject = TinySubject()
        r1, _ = run_trials(subject, tiny_program, 50, SamplingPlan.uniform(0.2), seed=9)
        r2, _ = run_trials(subject, tiny_program, 50, SamplingPlan.uniform(0.2), seed=9)
        assert r1.failed.tolist() == r2.failed.tolist()
        assert (r1.true_counts != r2.true_counts).nnz == 0

    def test_different_seed_different_population(self, tiny_program):
        subject = TinySubject()
        r1, _ = run_trials(subject, tiny_program, 50, SamplingPlan.full(), seed=1)
        r2, _ = run_trials(subject, tiny_program, 50, SamplingPlan.full(), seed=2)
        assert r1.failed.tolist() != r2.failed.tolist()

    def test_run_meta_records_seed(self, tiny_program):
        subject = TinySubject()
        reports, _ = run_trials(subject, tiny_program, 3, SamplingPlan.full(), seed=5)
        assert [m["seed"] for m in reports.metas] == [5, 6, 7]


class TestTraining:
    def test_site_means_have_site_shape(self, tiny_program):
        subject = TinySubject()
        means = collect_site_means(subject, tiny_program, 30)
        assert means.shape == (tiny_program.table.n_sites,)
        assert (means >= 0).all()
        assert means.max() > 0

    def test_zero_training_runs(self, tiny_program):
        subject = TinySubject()
        means = collect_site_means(subject, tiny_program, 0)
        assert (means == 0).all()

    def test_adaptive_plan_from_training(self, tiny_program):
        subject = TinySubject()
        means = collect_site_means(subject, tiny_program, 30)
        plan = SamplingPlan.adaptive(means)
        assert plan.site_rates.shape[0] == tiny_program.table.n_sites
        # Sites in this tiny program are reached far fewer than 100
        # times per run, so every rate should be 1.0.
        assert (plan.site_rates == 1.0).all()
