"""Tests for the HTML report generator."""

import pytest

from repro.harness.report import render_report, write_report


class TestRenderReport:
    def test_contains_predictors_and_thermometers(self, ccrypt_experiment):
        html_text = render_report(ccrypt_experiment)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "Ranked failure predictors" in html_text
        # The top predictor's name appears, escaped.
        top = ccrypt_experiment.elimination.selected[0]
        import html as html_module

        assert html_module.escape(top.predicate.name) in html_text
        # Thermometer colour bands.
        assert "#cc0000" in html_text

    def test_cooccurrence_columns_present_with_truth(self, ccrypt_experiment):
        html_text = render_report(ccrypt_experiment)
        assert "ccrypt1" in html_text
        assert "kind-" in html_text  # predictor grading

    def test_truth_can_be_suppressed(self, ccrypt_experiment):
        html_text = render_report(ccrypt_experiment, include_truth=False)
        assert "<span class='kind-" not in html_text

    def test_affinity_lists_rendered(self, ccrypt_experiment):
        html_text = render_report(ccrypt_experiment, affinity_top=3)
        assert "Affinity lists" in html_text

    def test_custom_title(self, ccrypt_experiment):
        html_text = render_report(ccrypt_experiment, title="My <Report>")
        assert "My &lt;Report&gt;" in html_text

    def test_write_report(self, ccrypt_experiment, tmp_path):
        path = tmp_path / "report.html"
        write_report(ccrypt_experiment, str(path))
        assert path.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
