"""CLI smoke tests."""

import pytest

from repro.cli import SUBJECTS, build_parser, main
from repro.factory.mutate import MUTATION_CLASSES


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SUBJECTS:
            assert name in out

    def test_run_requires_subject(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_subject_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--subject", "nope"])

    def test_strategy_choices(self):
        args = build_parser().parse_args(
            ["run", "--subject", "ccrypt", "--strategy", "3"]
        )
        assert args.strategy == 3


class TestRunCommand:
    def test_small_ccrypt_run(self, capsys):
        code = main(
            [
                "run",
                "--subject",
                "ccrypt",
                "--runs",
                "200",
                "--sampling",
                "full",
                "--training-runs",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ccrypt" in out
        assert "predicate" in out

    def test_save_then_analyze_round_trip(self, capsys, tmp_path):
        archive = tmp_path / "reports.npz"
        html = tmp_path / "report.html"
        code = main(
            [
                "run",
                "--subject",
                "ccrypt",
                "--runs",
                "150",
                "--sampling",
                "full",
                "--training-runs",
                "0",
                "--save",
                str(archive),
                "--html",
                str(html),
            ]
        )
        assert code == 0
        assert archive.exists() and html.exists()
        run_out = capsys.readouterr().out

        code = main(["analyze", str(archive)])
        assert code == 0
        analyze_out = capsys.readouterr().out
        # The same predictor list is recovered from the archive.
        for line in run_out.splitlines():
            if "cursor" in line:
                assert any("cursor" in l for l in analyze_out.splitlines())
                break

    def test_analyze_ztest_method(self, capsys, tmp_path):
        archive = tmp_path / "reports.npz"
        main(
            [
                "run", "--subject", "ccrypt", "--runs", "150",
                "--sampling", "full", "--training-runs", "0",
                "--save", str(archive),
            ]
        )
        capsys.readouterr()
        assert main(["analyze", str(archive), "--method", "ztest"]) == 0
        out = capsys.readouterr().out
        assert "elimination selected" in out


class TestCollectCommand:
    def _collect(self, store_dir, runs="90", seed=None):
        argv = [
            "collect", "--subject", "ccrypt", "--runs", runs,
            "--sampling", "full", "--out", str(store_dir),
            "--jobs", "2", "--chunk-size", "30",
        ]
        if seed is not None:
            argv += ["--seed", seed]
        return main(argv)

    def test_collect_then_analyze_store(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert self._collect(store_dir) == 0
        out = capsys.readouterr().out
        assert "3 shards, 90 runs" in out
        assert (store_dir / "manifest.json").exists()

        assert main(["analyze", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "scored incrementally" in out
        assert "predicate" in out

    def test_collect_appends_across_sessions(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert self._collect(store_dir, runs="60") == 0
        capsys.readouterr()
        # Second session with no --seed continues at the next free seed.
        assert self._collect(store_dir, runs="30") == 0
        out = capsys.readouterr().out + capsys.readouterr().err
        assert "90 runs" in out

    def test_analyze_store_stats_only(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        self._collect(store_dir)
        capsys.readouterr()
        assert main(["analyze", str(store_dir), "--stats-only", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Importance" in out
        assert "predicate" in out

    def test_store_analysis_matches_archive_analysis(self, capsys, tmp_path):
        """`collect` + `analyze DIR` finds the same top predictor as the
        monolithic `run --save` + `analyze FILE` path at equal seeds."""
        archive = tmp_path / "reports.npz"
        main(
            [
                "run", "--subject", "ccrypt", "--runs", "90",
                "--sampling", "full", "--training-runs", "0",
                "--save", str(archive),
            ]
        )
        capsys.readouterr()
        main(["analyze", str(archive)])
        mono_out = capsys.readouterr().out

        store_dir = tmp_path / "store"
        self._collect(store_dir, seed="0")
        capsys.readouterr()
        main(["analyze", str(store_dir)])
        store_out = capsys.readouterr().out

        def predictor_lines(text):
            return [
                line for line in text.splitlines()
                if "is TRUE" in line or "is FALSE" in line
            ]

        assert predictor_lines(store_out) == predictor_lines(mono_out)


class TestFaultInjectionCLI:
    def _collect(self, store_dir, *extra):
        return main(
            [
                "collect", "--subject", "ccrypt", "--runs", "90",
                "--sampling", "full", "--out", str(store_dir),
                "--jobs", "2", "--chunk-size", "30", "--seed", "0",
                *extra,
            ]
        )

    def test_inject_fault_requires_testing_flag(self, capsys, tmp_path):
        code = self._collect(tmp_path / "store", "--inject-fault", "kill-worker@0")
        assert code == 2
        err = capsys.readouterr().err
        assert "--testing" in err
        assert not (tmp_path / "store").exists()

    def test_collect_survives_injected_faults(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        code = self._collect(
            store_dir,
            "--testing",
            "--inject-fault", "kill-worker@1",
            "--inject-fault", "flip-bytes@2",
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "2 retries" in captured.err
        assert "1 dead workers" in captured.err
        assert "1 corrupt shards quarantined" in captured.err
        assert "3 shards, 90 runs" in captured.out
        assert (store_dir / "quarantine").is_dir()

        assert main(["analyze", str(store_dir), "--stats-only"]) == 0
        out = capsys.readouterr().out
        assert "Importance" in out

    def test_analyze_audit_reports_post_commit_loss(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert (
            self._collect(
                store_dir, "--testing", "--inject-fault", "stale-manifest@1"
            )
            == 0
        )
        capsys.readouterr()
        assert main(["analyze", str(store_dir), "--stats-only"]) == 0
        captured = capsys.readouterr()
        assert "quarantined shard-00000030.npz [missing-file]" in captured.err
        assert "30 of 90 runs lost to quarantine" in captured.err
        assert "60 surviving runs" in captured.err
        assert "Importance" in captured.out

    def test_analyze_no_audit_surfaces_typed_error(self, capsys, tmp_path):
        from repro.store import StaleManifestError

        store_dir = tmp_path / "store"
        self._collect(store_dir, "--testing", "--inject-fault", "stale-manifest@1")
        capsys.readouterr()
        with pytest.raises(StaleManifestError, match="audit"):
            main(["analyze", str(store_dir), "--stats-only", "--no-audit"])


class TestObservabilityCLI:
    def _collect(self, store_dir, *extra):
        return main(
            [
                "collect", "--subject", "ccrypt", "--runs", "60",
                "--out", str(store_dir),
                "--jobs", "2", "--chunk-size", "20", "--seed", "0",
                *extra,
            ]
        )

    def test_collect_writes_metrics_and_trace(self, capsys, tmp_path):
        import json

        from repro.obs.metrics import METRICS_SCHEMA
        from repro.obs.trace import read_trace

        metrics_path = tmp_path / "METRICS.json"
        trace_path = tmp_path / "TRACE.jsonl"
        code = self._collect(
            tmp_path / "store",
            "--metrics", str(metrics_path),
            "--trace", str(trace_path),
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "wrote metrics" in err and "wrote trace spans" in err

        doc = json.loads(metrics_path.read_text())
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["counters"]["collect.chunks"] == 3
        assert doc["counters"]["store.shards_committed"] == 3
        assert "collect.worker_chunk" in doc["timers"]

        names = {event["name"] for event in read_trace(str(trace_path))}
        assert {"collect.session", "collect.worker_chunk"} <= names

    def test_collect_without_flags_leaves_obs_off(self, capsys, tmp_path):
        from repro import obs

        assert self._collect(tmp_path / "store") == 0
        assert not obs.enabled()
        assert "wrote metrics" not in capsys.readouterr().err

    def test_analyze_profile_prints_timer_table(self, capsys, tmp_path):
        self._collect(tmp_path / "store")
        capsys.readouterr()
        assert main(["analyze", str(tmp_path / "store"), "--profile"]) == 0
        captured = capsys.readouterr()
        assert "timer" in captured.err
        assert "store.stream_stats" in captured.err
        assert "Importance" not in captured.err  # results stay on stdout

    def test_bench_appends_both_documents(self, capsys, tmp_path):
        from repro.obs.bench import validate_file

        code = main(
            [
                "bench", "--quick", "--scale", "0.01",
                "--out-dir", str(tmp_path), "--label", "cli-test",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH_collection.json" in out and "BENCH_analysis.json" in out
        for name, kind in (
            ("BENCH_collection.json", "collection"),
            ("BENCH_analysis.json", "analysis"),
        ):
            doc = validate_file(str(tmp_path / name))
            assert doc["kind"] == kind
            assert doc["entries"][0]["label"] == "cli-test"


class TestListJson:
    def test_machine_readable_listing(self, capsys):
        import json

        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in entries] == sorted(SUBJECTS)
        for entry in entries:
            subject = SUBJECTS[entry["name"]]()
            assert entry["bug_ids"] == list(subject.bug_ids)
            assert entry["bug_count"] == len(subject.bug_ids)
            assert entry["trial_budget"] == subject.trial_budget
            assert entry["trial_budget"] > 0
            assert entry["kind"] == subject.kind
            assert entry["n_sites"] > 0
            assert entry["n_predicates"] > entry["n_sites"]
            if entry["kind"] == "factory":
                assert entry["mutation_class"] in MUTATION_CLASSES
            else:
                assert entry["mutation_class"] is None


class TestJobsDefaultsUnified:
    def test_every_jobs_flag_defaults_to_one(self):
        parser = build_parser()
        for argv in (
            ["run", "--subject", "ccrypt"],
            ["collect", "--subject", "ccrypt", "--out", "x"],
            ["analyze", "store"],
        ):
            assert parser.parse_args(argv).jobs == 1, argv

    def test_runs_defaults_to_subject_budget(self):
        parser = build_parser()
        assert parser.parse_args(["run", "--subject", "ccrypt"]).runs is None
        assert (
            parser.parse_args(
                ["collect", "--subject", "moss", "--out", "x"]
            ).runs
            is None
        )


class TestServeSubmitCLI:
    def test_serve_new_store_requires_subject(self, capsys, tmp_path):
        assert main(["serve", str(tmp_path / "store")]) == 2
        assert "--subject is required" in capsys.readouterr().err

    def test_serve_rejects_subject_mismatch(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert (
            main(
                [
                    "collect", "--subject", "ccrypt", "--runs", "30",
                    "--sampling", "full", "--out", str(store_dir),
                    "--chunk-size", "30", "--seed", "0",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["serve", str(store_dir), "--subject", "moss"]) == 2
        err = capsys.readouterr().err
        assert "holds subject 'ccrypt'" in err

    def test_submit_inject_fault_requires_testing(self, capsys, tmp_path):
        code = main(
            [
                "submit", "--subject", "ccrypt",
                "--url", "http://127.0.0.1:9",
                "--spool", str(tmp_path / "spool"),
                "--inject-fault", "net-refuse@0",
            ]
        )
        assert code == 2
        assert "--testing" in capsys.readouterr().err

    def test_serve_inject_fault_requires_testing(self, capsys, tmp_path):
        code = main(
            [
                "serve", str(tmp_path / "store"), "--subject", "ccrypt",
                "--inject-fault", "net-500@0",
            ]
        )
        assert code == 2
        assert "--testing" in capsys.readouterr().err

    def test_submit_defaults(self):
        args = build_parser().parse_args(
            [
                "submit", "--subject", "ccrypt",
                "--url", "http://127.0.0.1:8080", "--spool", "spool",
            ]
        )
        assert args.runs is None  # resolved to the subject's trial budget
        assert args.batch_size == 32
        assert args.max_attempts == 8

    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "store", "--subject", "ccrypt"]
        )
        assert args.port == 8080
        assert args.batch_runs == 200
        assert args.max_buffered == 100_000
