"""CLI smoke tests."""

import pytest

from repro.cli import SUBJECTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SUBJECTS:
            assert name in out

    def test_run_requires_subject(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_unknown_subject_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--subject", "nope"])

    def test_strategy_choices(self):
        args = build_parser().parse_args(
            ["run", "--subject", "ccrypt", "--strategy", "3"]
        )
        assert args.strategy == 3


class TestRunCommand:
    def test_small_ccrypt_run(self, capsys):
        code = main(
            [
                "run",
                "--subject",
                "ccrypt",
                "--runs",
                "200",
                "--sampling",
                "full",
                "--training-runs",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ccrypt" in out
        assert "predicate" in out

    def test_save_then_analyze_round_trip(self, capsys, tmp_path):
        archive = tmp_path / "reports.npz"
        html = tmp_path / "report.html"
        code = main(
            [
                "run",
                "--subject",
                "ccrypt",
                "--runs",
                "150",
                "--sampling",
                "full",
                "--training-runs",
                "0",
                "--save",
                str(archive),
                "--html",
                str(html),
            ]
        )
        assert code == 0
        assert archive.exists() and html.exists()
        run_out = capsys.readouterr().out

        code = main(["analyze", str(archive)])
        assert code == 0
        analyze_out = capsys.readouterr().out
        # The same predictor list is recovered from the archive.
        for line in run_out.splitlines():
            if "cursor" in line:
                assert any("cursor" in l for l in analyze_out.splitlines())
                break

    def test_analyze_ztest_method(self, capsys, tmp_path):
        archive = tmp_path / "reports.npz"
        main(
            [
                "run", "--subject", "ccrypt", "--runs", "150",
                "--sampling", "full", "--training-runs", "0",
                "--save", str(archive),
            ]
        )
        capsys.readouterr()
        assert main(["analyze", str(archive), "--method", "ztest"]) == 0
        out = capsys.readouterr().out
        assert "elimination selected" in out
