"""Tests for the paper-style table renderers."""

from repro.baselines.stacktrace import stack_study
from repro.core.elimination import eliminate
from repro.core.ranking import RankingStrategy, rank_predicates
from repro.core.runs_needed import RunsNeededResult
from repro.core.truth import GroundTruth, cooccurrence_table
from repro.harness.tables import (
    format_logistic_table,
    format_predictor_table,
    format_ranking_table,
    format_runs_needed_table,
    format_stack_table,
    format_summary_table,
)

from tests.helpers import make_reports


def _population():
    runs = [(True, {0}, None)] * 12 + [(False, {1}, None)] * 12
    runs += [(True, {1}, None)] * 2 + [(False, set(), None)] * 10
    return make_reports(2, runs)


class TestRankingTable:
    def test_contains_predicates_and_counts(self):
        reports = _population()
        ranking = rank_predicates(reports, RankingStrategy.BY_IMPORTANCE)
        text = format_ranking_table(ranking, "test", top=5)
        assert "P0" in text
        assert "Context" in text
        assert "[" in text  # thermometer bars

    def test_truncation_note(self):
        reports = _population()
        ranking = rank_predicates(reports, RankingStrategy.BY_IMPORTANCE)
        text = format_ranking_table(ranking, "test", top=1)
        if len(ranking.entries) > 1:
            assert "additional predicates follow" in text


class TestSummaryTable:
    def test_one_row_per_subject(self):
        rows = [
            {
                "subject": "moss",
                "lines_of_code": 343,
                "successful_runs": 400,
                "failing_runs": 100,
                "sites": 1400,
                "initial_predicates": 8000,
                "after_increase_pruning": 90,
                "after_elimination": 9,
            }
        ]
        text = format_summary_table(rows)
        assert "moss" in text
        assert "8000" in text


class TestPredictorTable:
    def test_cooccurrence_columns(self):
        reports = _population()
        truth = GroundTruth(bug_ids=["bugA", "bugB"])
        for i in range(reports.n_runs):
            if reports.failed[i]:
                truth.add_run(["bugA"] if reports.true_mask(0)[i] else ["bugB"])
            else:
                truth.add_run([])
        result = eliminate(reports)
        co = cooccurrence_table(
            reports, truth, [s.predicate.index for s in result.selected]
        )
        text = format_predictor_table(result, co, bug_ids=["bugA", "bugB"])
        assert "P0" in text
        assert "12" in text  # bugA count under P0

    def test_renders_without_truth(self):
        reports = _population()
        result = eliminate(reports)
        text = format_predictor_table(result)
        assert "predicate" in text


class TestOtherTables:
    def test_runs_needed_table(self):
        res = RunsNeededResult(
            predicate_index=0,
            runs_needed=500,
            failing_true_at_n=18,
            importance_full=0.7,
            threshold=0.2,
            curve=[(500, 0.6, 18)],
        )
        text = format_runs_needed_table({"moss": {"moss1": res}})
        assert "moss1" in text and "500" in text and "18" in text

    def test_logistic_table(self):
        reports = _population()
        pred = reports.table.predicates[0]
        text = format_logistic_table([(pred, 0.77)])
        assert "0.77" in text and "P0" in text

    def test_stack_table(self):
        reports = make_reports(
            1,
            [(True, set(), None), (False, set(), None)],
            stacks=[("main", "f", "Boom"), None],
        )
        truth = GroundTruth(bug_ids=["a"])
        truth.add_run(["a"])
        truth.add_run([])
        text = format_stack_table(stack_study(reports, truth))
        assert "a" in text
        assert "100%" in text
