"""The measure bake-off harness: ground truth, metrics, CLI, baseline gate."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import SUBJECTS, main as cli_main
from repro.core import measures
from repro.core.importance import importance_scores
from repro.core.truth import BugSite, bug_sites_from_source, faulty_predicate_mask
from repro.harness.bakeoff import (
    BAKEOFF_SCHEMA,
    compare_to_baseline,
    rank_metrics,
    run_bakeoff,
)
from repro.harness.tables import format_bakeoff_table
from repro.instrument.tracer import instrument_source

#: Functions each hand-built subject's record_bug calls live in (ground
#: truth for the ground truth); updating a subject's bugs must update
#: this map.  Factory subjects stamp their own record_bug site, so their
#: functions are checked structurally below instead.
EXPECTED_BUG_FUNCTIONS = {
    "moss": {"index_remove_common", "main", "tokenize_file"},
    "ccrypt": {"prompt_overwrite"},
    "bc": {"more_arrays"},
    "exif": {"mnote_canon_load", "parse_thumbnail", "save_data"},
    "rhythmbox": {"on_tick", "remove_view"},
}


class TestBugSites:
    @pytest.mark.parametrize("name", sorted(EXPECTED_BUG_FUNCTIONS))
    def test_every_builtin_has_extractable_bug_sites(self, name):
        subject = SUBJECTS[name]()
        sites = bug_sites_from_source(subject.source())
        assert {s.function for s in sites} == EXPECTED_BUG_FUNCTIONS[name]
        assert {s.bug_id for s in sites} == set(subject.bug_ids)
        assert all(s.line >= 1 for s in sites)

    @pytest.mark.parametrize("name", sorted(SUBJECTS))
    def test_faulty_mask_nonempty_and_proper_subset(self, name):
        subject = SUBJECTS[name]()
        sites = subject.bug_sites()
        program = subject.build_program()
        mask = faulty_predicate_mask(program.table, sites)
        assert mask.any(), "no faulty predicates marked"
        assert not mask.all(), "every predicate marked faulty"

    def test_nested_and_module_level_calls(self):
        source = (
            "record_bug('top')\n"
            "def outer():\n"
            "    def inner():\n"
            "        record_bug('deep')\n"
            "    return inner\n"
        )
        sites = bug_sites_from_source(source)
        assert sites == [
            BugSite(bug_id="top", function="<module>", line=1),
            BugSite(bug_id="deep", function="inner", line=4),
        ]

    def test_dynamic_bug_ids_are_skipped(self):
        assert bug_sites_from_source("def f(x):\n    record_bug(x)\n") == []


class _FakeTable:
    """Minimal predicate-table stand-in for rank_metrics unit tests."""

    def __init__(self, site_indices):
        from repro.core.predicates import Predicate, PredicateKind

        self.predicates = [
            Predicate(
                index=i,
                site_index=s,
                kind=PredicateKind.BRANCH_TRUE,
                name=f"p{i}",
            )
            for i, s in enumerate(site_indices)
        ]


class TestRankMetrics:
    def test_rank_and_wasted_effort(self):
        # values rank p2 > p0 > p1; p1 is faulty -> rank 3, two distinct
        # non-faulty sites (0 and 2) examined first.
        table = _FakeTable([0, 1, 2])
        got = rank_metrics(
            table, np.array([0.5, 0.1, 0.9]), np.array([False, True, False])
        )
        assert got["rank_of_first_faulty_site"] == 3
        assert got["wasted_effort_sites"] == 2
        assert got["first_faulty_predicate"] == "p1"

    def test_duplicate_site_not_double_billed(self):
        # Two leading predicates share site 0: wasted effort counts the
        # site once, though the faulty predicate sits at rank 3.
        table = _FakeTable([0, 0, 1])
        got = rank_metrics(
            table, np.array([0.9, 0.8, 0.1]), np.array([False, False, True])
        )
        assert got["rank_of_first_faulty_site"] == 3
        assert got["wasted_effort_sites"] == 1

    def test_tie_breaks_by_predicate_index(self):
        table = _FakeTable([0, 1, 2])
        got = rank_metrics(
            table, np.array([0.5, 0.5, 0.5]), np.array([False, True, True])
        )
        assert got["rank_of_first_faulty_site"] == 2

    def test_no_faulty_predicates_reports_none(self):
        table = _FakeTable([0])
        got = rank_metrics(table, np.array([1.0]), np.array([False]))
        assert got == {
            "rank_of_first_faulty_site": None,
            "wasted_effort_sites": None,
            "first_faulty_predicate": None,
        }


@pytest.fixture(scope="module")
def ccrypt_bakeoff():
    return run_bakeoff(SUBJECTS, subject_names=["ccrypt"], runs=120, seed=0)


class TestBakeoffDocument:
    def test_schema_and_matrix_shape(self, ccrypt_bakeoff):
        doc = ccrypt_bakeoff
        assert doc["schema"] == BAKEOFF_SCHEMA
        assert doc["sampling"] == "full"
        assert set(doc["subjects"]) == {"ccrypt"}
        names = [m["measure"] for m in doc["measures"]]
        assert names == list(measures.available())
        assert len(names) >= 6
        for entry in doc["measures"]:
            assert entry["version"] >= 1
            assert entry["formula"]
            res = entry["results"]["ccrypt"]
            assert res["rank_of_first_faulty_site"] >= 1
            assert res["wasted_effort_sites"] >= 0

    def test_document_is_json_clean_and_deterministic(self, ccrypt_bakeoff):
        again = run_bakeoff(SUBJECTS, subject_names=["ccrypt"], runs=120, seed=0)
        assert json.dumps(ccrypt_bakeoff, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_importance_row_matches_historical_pipeline(self, ccrypt_bakeoff):
        """The Importance row is the paper's own ranking: recompute it from
        scratch through importance_scores and compare the graded rank."""
        from repro.harness.runner import run_trials
        from repro.instrument.sampling import SamplingPlan
        from repro.store.incremental import SufficientStats

        subject = SUBJECTS["ccrypt"]()
        program = instrument_source(subject.source(), "ccrypt")
        reports, _ = run_trials(subject, program, 120, SamplingPlan.full(), seed=0)
        stats = SufficientStats.from_reports(reports)
        scores = stats.to_scores() if hasattr(stats, "to_scores") else None
        if scores is None:
            from repro.core.scores import scores_from_counts

            scores = scores_from_counts(
                stats.F,
                stats.S,
                stats.F_obs,
                stats.S_obs,
                stats.num_failing,
                stats.num_successful,
            )
        imp = importance_scores(scores).importance
        # Bit-identity of the measure itself...
        assert measures.measure_values(scores, "importance").tobytes() == imp.tobytes()
        # ...and of the graded cell.
        faulty = faulty_predicate_mask(
            program.table, bug_sites_from_source(subject.source())
        )
        want = rank_metrics(program.table, imp, faulty)
        row = next(
            m for m in ccrypt_bakeoff["measures"] if m["measure"] == "importance"
        )
        assert row["results"]["ccrypt"] == want

    def test_table_rendering(self, ccrypt_bakeoff):
        text = format_bakeoff_table(ccrypt_bakeoff)
        assert "ccrypt" in text
        for name in measures.available():
            assert name in text


class TestBaselineGate:
    def test_self_comparison_is_clean(self, ccrypt_bakeoff):
        assert compare_to_baseline(ccrypt_bakeoff, ccrypt_bakeoff) == []

    def test_regression_detected(self, ccrypt_bakeoff):
        worse = json.loads(json.dumps(ccrypt_bakeoff))
        row = next(m for m in worse["measures"] if m["measure"] == "importance")
        row["results"]["ccrypt"]["rank_of_first_faulty_site"] += 5
        regs = compare_to_baseline(worse, ccrypt_bakeoff)
        assert len(regs) == 1
        assert regs[0].subject == "ccrypt"
        assert "regressed" in str(regs[0])
        # Improvement in the other direction is not a regression.
        assert compare_to_baseline(ccrypt_bakeoff, worse) == []

    def test_disjoint_subjects_are_ignored(self, ccrypt_bakeoff):
        other = json.loads(json.dumps(ccrypt_bakeoff))
        row = next(m for m in other["measures"] if m["measure"] == "importance")
        row["results"] = {"moss": row["results"]["ccrypt"]}
        assert compare_to_baseline(ccrypt_bakeoff, other) == []


class TestBakeoffCLI:
    def test_json_emission_and_baseline_gate(self, capsys, tmp_path):
        out = tmp_path / "bakeoff.json"
        rc = cli_main(
            [
                "bakeoff",
                "--subject",
                "ccrypt",
                "--runs",
                "60",
                "--json",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == BAKEOFF_SCHEMA
        assert json.loads(out.read_text()) == doc
        # Self-baseline passes...
        assert (
            cli_main(
                ["bakeoff", "--subject", "ccrypt", "--runs", "60",
                 "--baseline", str(out)]
            )
            == 0
        )
        capsys.readouterr()
        # ...and a doctored (better-than-achievable) baseline fails.
        row = next(m for m in doc["measures"] if m["measure"] == "importance")
        row["results"]["ccrypt"]["rank_of_first_faulty_site"] = 0
        out.write_text(json.dumps(doc))
        assert (
            cli_main(
                ["bakeoff", "--subject", "ccrypt", "--runs", "60",
                 "--baseline", str(out)]
            )
            == 1
        )

    def test_measure_subset_and_table_output(self, capsys):
        rc = cli_main(
            [
                "bakeoff",
                "--subject",
                "ccrypt",
                "--runs",
                "60",
                "--measure",
                "tarantula",
                "--measure",
                "importance",
            ]
        )
        assert rc == 0
        outp = capsys.readouterr().out
        assert "tarantula" in outp and "importance" in outp
        assert "ochiai" not in outp
