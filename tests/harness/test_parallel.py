"""Tests for the parallel trial runner."""

import numpy as np
import pytest

from repro.harness.parallel import run_trials_parallel
from repro.harness.runner import run_trials
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source

from tests.harness.test_runner import TinySubject


class TestParallelRunner:
    def test_bit_identical_to_serial(self):
        subject = TinySubject()
        plan = SamplingPlan.uniform(0.3)

        program = instrument_source(subject.source(), subject.name)
        serial_reports, serial_truth = run_trials(
            subject, program, 300, plan, seed=5
        )
        par_reports, par_truth = run_trials_parallel(
            subject, 300, plan, seed=5, jobs=3, chunk_size=40
        )

        assert par_reports.n_runs == serial_reports.n_runs
        assert par_reports.failed.tolist() == serial_reports.failed.tolist()
        assert (par_reports.true_counts != serial_reports.true_counts).nnz == 0
        assert (par_reports.site_counts != serial_reports.site_counts).nnz == 0
        assert par_reports.stacks == serial_reports.stacks
        assert par_truth.occurrences == serial_truth.occurrences

    def test_single_job_works(self):
        subject = TinySubject()
        reports, truth = run_trials_parallel(
            subject, 50, SamplingPlan.full(), seed=0, jobs=1, chunk_size=10
        )
        assert reports.n_runs == 50 == truth.n_runs
        assert reports.num_failing > 0

    def test_chunk_boundaries_preserve_order(self):
        subject = TinySubject()
        reports, _ = run_trials_parallel(
            subject, 25, SamplingPlan.full(), seed=100, jobs=2, chunk_size=4
        )
        assert [m["seed"] for m in reports.metas] == list(range(100, 125))
