"""Tests for the parallel trial runner and the direct-to-disk shard writers."""

import tracemalloc

import numpy as np
import pytest

from repro.harness.parallel import run_trials_parallel, run_trials_sharded
from repro.harness.runner import collect_site_means, run_trials
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source

from tests.harness.test_runner import TinySubject


def _adaptive_plan(subject, program):
    """A genuine per-site (adaptive) plan trained on the subject."""
    means = collect_site_means(subject, program, 20, seed=777)
    # Force a mix of rates so the per-site countdowns actually differ.
    rates = np.clip(np.where(means > 0, 0.35, 1.0), 0.01, 1.0)
    return SamplingPlan.per_site(rates)


def _assert_populations_identical(a_reports, a_truth, b_reports, b_truth):
    assert a_reports.n_runs == b_reports.n_runs
    assert a_reports.failed.tolist() == b_reports.failed.tolist()
    assert (a_reports.true_counts != b_reports.true_counts).nnz == 0
    assert (a_reports.site_counts != b_reports.site_counts).nnz == 0
    assert a_reports.stacks == b_reports.stacks
    if a_truth is not None and b_truth is not None:
        assert a_truth.occurrences == b_truth.occurrences


class TestParallelRunner:
    def test_bit_identical_to_serial(self):
        subject = TinySubject()
        plan = SamplingPlan.uniform(0.3)

        program = instrument_source(subject.source(), subject.name)
        serial_reports, serial_truth = run_trials(
            subject, program, 300, plan, seed=5
        )
        par_reports, par_truth = run_trials_parallel(
            subject, 300, plan, seed=5, jobs=3, chunk_size=40
        )

        _assert_populations_identical(
            par_reports, par_truth, serial_reports, serial_truth
        )

    def test_bit_identical_under_per_site_plan(self):
        """The serial/parallel identity must hold for adaptive (per-site)
        sampling too, where every site keeps its own countdown."""
        subject = TinySubject()
        program = instrument_source(subject.source(), subject.name)
        plan = _adaptive_plan(subject, program)
        assert plan.mode == "per-site"

        serial_reports, serial_truth = run_trials(
            subject, program, 240, plan, seed=11
        )
        par_reports, par_truth = run_trials_parallel(
            subject, 240, plan, seed=11, jobs=3, chunk_size=50
        )
        _assert_populations_identical(
            par_reports, par_truth, serial_reports, serial_truth
        )

    def test_crash_stacks_preserved_across_processes(self):
        """Crash-stack-bearing failing runs keep their signatures when
        records cross the process boundary."""
        subject = TinySubject()
        program = instrument_source(subject.source(), subject.name)
        serial_reports, _ = run_trials(
            subject, program, 150, SamplingPlan.full(), seed=2
        )
        par_reports, _ = run_trials_parallel(
            subject, 150, SamplingPlan.full(), seed=2, jobs=2, chunk_size=30
        )
        assert par_reports.num_failing > 0
        assert par_reports.stacks == serial_reports.stacks
        for i in range(par_reports.n_runs):
            if par_reports.failed[i]:
                assert par_reports.stacks[i][-1] == "ValueError"

    def test_single_job_works(self):
        subject = TinySubject()
        reports, truth = run_trials_parallel(
            subject, 50, SamplingPlan.full(), seed=0, jobs=1, chunk_size=10
        )
        assert reports.n_runs == 50 == truth.n_runs
        assert reports.num_failing > 0

    def test_chunk_boundaries_preserve_order(self):
        subject = TinySubject()
        reports, _ = run_trials_parallel(
            subject, 25, SamplingPlan.full(), seed=100, jobs=2, chunk_size=4
        )
        assert [m["seed"] for m in reports.metas] == list(range(100, 125))


class TestShardedCollection:
    @pytest.mark.parametrize("plan_kind", ["uniform", "per-site"])
    def test_merged_shards_bit_identical_to_serial(self, tmp_path, plan_kind):
        subject = TinySubject()
        program = instrument_source(subject.source(), subject.name)
        if plan_kind == "uniform":
            plan = SamplingPlan.uniform(0.3)
        else:
            plan = _adaptive_plan(subject, program)

        serial_reports, serial_truth = run_trials(
            subject, program, 200, plan, seed=7
        )
        store = run_trials_sharded(
            subject,
            200,
            plan,
            str(tmp_path / "store"),
            seed=7,
            jobs=3,
            chunk_size=30,
        )
        merged_reports, merged_truth = store.load_merged()
        _assert_populations_identical(
            merged_reports, merged_truth, serial_reports, serial_truth
        )

    def test_incremental_store_scores_equal_monolithic(self, tmp_path):
        """The acceptance property: streaming shard statistics produce
        exactly the monolithic counters (F, S, F_obs, S_obs, NumF)."""
        from repro.core.scores import compute_scores

        subject = TinySubject()
        program = instrument_source(subject.source(), subject.name)
        plan = _adaptive_plan(subject, program)
        serial_reports, _ = run_trials(subject, program, 180, plan, seed=3)
        store = run_trials_sharded(
            subject, 180, plan, str(tmp_path / "store"), seed=3, jobs=2, chunk_size=40
        )
        streaming = store.compute_scores()
        mono = compute_scores(serial_reports)
        np.testing.assert_array_equal(streaming.F, mono.F)
        np.testing.assert_array_equal(streaming.S, mono.S)
        np.testing.assert_array_equal(streaming.F_obs, mono.F_obs)
        np.testing.assert_array_equal(streaming.S_obs, mono.S_obs)
        assert streaming.num_failing == mono.num_failing

    def test_append_session_extends_population(self, tmp_path):
        subject = TinySubject()
        plan = SamplingPlan.full()
        store_dir = str(tmp_path / "store")
        run_trials_sharded(subject, 60, plan, store_dir, seed=0, jobs=2, chunk_size=20)
        store = run_trials_sharded(
            subject, 40, plan, store_dir, seed=60, jobs=2, chunk_size=20
        )
        assert store.n_runs == 100
        merged, _ = store.load_merged()
        assert [m["seed"] for m in merged.metas] == list(range(100))

    def test_overlapping_seed_range_rejected(self, tmp_path):
        subject = TinySubject()
        plan = SamplingPlan.full()
        store_dir = str(tmp_path / "store")
        run_trials_sharded(subject, 40, plan, store_dir, seed=0, jobs=1, chunk_size=20)
        with pytest.raises(FileExistsError, match="next free seed: 40"):
            run_trials_sharded(
                subject, 40, plan, store_dir, seed=20, jobs=1, chunk_size=20
            )

    def test_parent_memory_bounded_in_n_runs(self, tmp_path):
        """Workers write shards directly, so the parent's peak allocation
        must not grow with the population size (only shard-membership
        records return).  Compare parent-side peaks for a small and an
        8x larger collection: far-sublinear growth is required."""
        subject = TinySubject()
        plan = SamplingPlan.full()

        def parent_peak(n_runs, store_dir):
            tracemalloc.start()
            tracemalloc.reset_peak()
            run_trials_sharded(
                subject, n_runs, plan, store_dir, seed=0, jobs=2, chunk_size=30
            )
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        # Warm-up collection so imports/caches don't bias the first sample.
        parent_peak(30, str(tmp_path / "warm"))
        small = parent_peak(90, str(tmp_path / "small"))
        large = parent_peak(720, str(tmp_path / "large"))
        # 8x the runs must cost far less than 8x the parent peak; the
        # dominant parent allocation (instrumenting the subject for the
        # manifest's table) is constant in n_runs.
        assert large < small * 3 + 256 * 1024, (small, large)
