"""Tests for the parallel trial runner and the direct-to-disk shard writers."""

import os
import tracemalloc

import numpy as np
import pytest

from repro.harness.parallel import run_trials_parallel, run_trials_sharded
from repro.harness.runner import collect_site_means, run_trials
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.store import CollectionError, Fault, ShardStore

from tests.harness.test_runner import TinySubject


def _adaptive_plan(subject, program):
    """A genuine per-site (adaptive) plan trained on the subject."""
    means = collect_site_means(subject, program, 20, seed=777)
    # Force a mix of rates so the per-site countdowns actually differ.
    rates = np.clip(np.where(means > 0, 0.35, 1.0), 0.01, 1.0)
    return SamplingPlan.per_site(rates)


def _assert_populations_identical(a_reports, a_truth, b_reports, b_truth):
    assert a_reports.n_runs == b_reports.n_runs
    assert a_reports.failed.tolist() == b_reports.failed.tolist()
    assert (a_reports.true_counts != b_reports.true_counts).nnz == 0
    assert (a_reports.site_counts != b_reports.site_counts).nnz == 0
    assert a_reports.stacks == b_reports.stacks
    if a_truth is not None and b_truth is not None:
        assert a_truth.occurrences == b_truth.occurrences


class TestParallelRunner:
    def test_bit_identical_to_serial(self):
        subject = TinySubject()
        plan = SamplingPlan.uniform(0.3)

        program = instrument_source(subject.source(), subject.name)
        serial_reports, serial_truth = run_trials(
            subject, program, 300, plan, seed=5
        )
        par_reports, par_truth = run_trials_parallel(
            subject, 300, plan, seed=5, jobs=3, chunk_size=40
        )

        _assert_populations_identical(
            par_reports, par_truth, serial_reports, serial_truth
        )

    def test_bit_identical_under_per_site_plan(self):
        """The serial/parallel identity must hold for adaptive (per-site)
        sampling too, where every site keeps its own countdown."""
        subject = TinySubject()
        program = instrument_source(subject.source(), subject.name)
        plan = _adaptive_plan(subject, program)
        assert plan.mode == "per-site"

        serial_reports, serial_truth = run_trials(
            subject, program, 240, plan, seed=11
        )
        par_reports, par_truth = run_trials_parallel(
            subject, 240, plan, seed=11, jobs=3, chunk_size=50
        )
        _assert_populations_identical(
            par_reports, par_truth, serial_reports, serial_truth
        )

    def test_crash_stacks_preserved_across_processes(self):
        """Crash-stack-bearing failing runs keep their signatures when
        records cross the process boundary."""
        subject = TinySubject()
        program = instrument_source(subject.source(), subject.name)
        serial_reports, _ = run_trials(
            subject, program, 150, SamplingPlan.full(), seed=2
        )
        par_reports, _ = run_trials_parallel(
            subject, 150, SamplingPlan.full(), seed=2, jobs=2, chunk_size=30
        )
        assert par_reports.num_failing > 0
        assert par_reports.stacks == serial_reports.stacks
        for i in range(par_reports.n_runs):
            if par_reports.failed[i]:
                assert par_reports.stacks[i][-1] == "ValueError"

    def test_single_job_works(self):
        subject = TinySubject()
        reports, truth = run_trials_parallel(
            subject, 50, SamplingPlan.full(), seed=0, jobs=1, chunk_size=10
        )
        assert reports.n_runs == 50 == truth.n_runs
        assert reports.num_failing > 0

    def test_chunk_boundaries_preserve_order(self):
        subject = TinySubject()
        reports, _ = run_trials_parallel(
            subject, 25, SamplingPlan.full(), seed=100, jobs=2, chunk_size=4
        )
        assert [m["seed"] for m in reports.metas] == list(range(100, 125))


class TestShardedCollection:
    @pytest.mark.parametrize("plan_kind", ["uniform", "per-site"])
    def test_merged_shards_bit_identical_to_serial(self, tmp_path, plan_kind):
        subject = TinySubject()
        program = instrument_source(subject.source(), subject.name)
        if plan_kind == "uniform":
            plan = SamplingPlan.uniform(0.3)
        else:
            plan = _adaptive_plan(subject, program)

        serial_reports, serial_truth = run_trials(
            subject, program, 200, plan, seed=7
        )
        store = run_trials_sharded(
            subject,
            200,
            plan,
            str(tmp_path / "store"),
            seed=7,
            jobs=3,
            chunk_size=30,
        )
        merged_reports, merged_truth = store.load_merged()
        _assert_populations_identical(
            merged_reports, merged_truth, serial_reports, serial_truth
        )

    def test_incremental_store_scores_equal_monolithic(self, tmp_path):
        """The acceptance property: streaming shard statistics produce
        exactly the monolithic counters (F, S, F_obs, S_obs, NumF)."""
        from repro.core.scores import compute_scores

        subject = TinySubject()
        program = instrument_source(subject.source(), subject.name)
        plan = _adaptive_plan(subject, program)
        serial_reports, _ = run_trials(subject, program, 180, plan, seed=3)
        store = run_trials_sharded(
            subject, 180, plan, str(tmp_path / "store"), seed=3, jobs=2, chunk_size=40
        )
        streaming = store.compute_scores()
        mono = compute_scores(serial_reports)
        np.testing.assert_array_equal(streaming.F, mono.F)
        np.testing.assert_array_equal(streaming.S, mono.S)
        np.testing.assert_array_equal(streaming.F_obs, mono.F_obs)
        np.testing.assert_array_equal(streaming.S_obs, mono.S_obs)
        assert streaming.num_failing == mono.num_failing

    def test_append_session_extends_population(self, tmp_path):
        subject = TinySubject()
        plan = SamplingPlan.full()
        store_dir = str(tmp_path / "store")
        run_trials_sharded(subject, 60, plan, store_dir, seed=0, jobs=2, chunk_size=20)
        store = run_trials_sharded(
            subject, 40, plan, store_dir, seed=60, jobs=2, chunk_size=20
        )
        assert store.n_runs == 100
        merged, _ = store.load_merged()
        assert [m["seed"] for m in merged.metas] == list(range(100))

    def test_overlapping_seed_range_rejected(self, tmp_path):
        subject = TinySubject()
        plan = SamplingPlan.full()
        store_dir = str(tmp_path / "store")
        run_trials_sharded(subject, 40, plan, store_dir, seed=0, jobs=1, chunk_size=20)
        with pytest.raises(FileExistsError, match="next free seed: 40"):
            run_trials_sharded(
                subject, 40, plan, store_dir, seed=20, jobs=1, chunk_size=20
            )

    def test_parent_memory_bounded_in_n_runs(self, tmp_path):
        """Workers write shards directly, so the parent's peak allocation
        must not grow with the population size (only shard-membership
        records return).  Compare parent-side peaks for a small and an
        8x larger collection: far-sublinear growth is required."""
        subject = TinySubject()
        plan = SamplingPlan.full()

        def parent_peak(n_runs, store_dir):
            tracemalloc.start()
            tracemalloc.reset_peak()
            run_trials_sharded(
                subject, n_runs, plan, store_dir, seed=0, jobs=2, chunk_size=30
            )
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        # Warm-up collection so imports/caches don't bias the first sample.
        parent_peak(30, str(tmp_path / "warm"))
        small = parent_peak(90, str(tmp_path / "small"))
        large = parent_peak(720, str(tmp_path / "large"))
        # 8x the runs must cost far less than 8x the parent peak; the
        # dominant parent allocation (instrumenting the subject for the
        # manifest's table) is constant in n_runs.
        assert large < small * 3 + 256 * 1024, (small, large)


def _collect(store_dir, faults=(), n_runs=60, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("chunk_size", 20)
    kwargs.setdefault("backoff_base", 0.01)
    return run_trials_sharded(
        TinySubject(),
        n_runs,
        SamplingPlan.full(),
        str(store_dir),
        seed=0,
        faults=faults,
        **kwargs,
    )


class TestSupervision:
    """Worker death, hangs, and in-transit corruption are detected and
    repaired by re-running the chunk's seed range."""

    def test_killed_worker_detected_and_retried(self, tmp_path):
        store = _collect(tmp_path / "s", faults=(Fault("kill-worker", chunk=0),))
        report = store.last_collection
        assert report.worker_deaths == 1 and report.retries == 1
        assert store.n_runs == 60 and store.n_shards == 3
        failed = [e for e in store.read_log() if e["event"] == "chunk-failed"]
        assert [e["reason"] for e in failed] == ["worker-died"]
        assert failed[0]["seed_start"] == 0

    def test_hung_worker_killed_at_timeout_and_retried(self, tmp_path):
        store = _collect(
            tmp_path / "s",
            faults=(Fault("hang-worker", chunk=1),),
            chunk_timeout=1.0,
        )
        report = store.last_collection
        assert report.timeouts == 1 and report.retries == 1
        assert store.n_runs == 60
        failed = [e for e in store.read_log() if e["event"] == "chunk-failed"]
        assert [e["reason"] for e in failed] == ["timeout"]

    def test_truncated_shard_quarantined_and_retried(self, tmp_path):
        store = _collect(tmp_path / "s", faults=(Fault("truncate-shard", chunk=2),))
        report = store.last_collection
        assert report.corrupt_shards == 1
        assert report.quarantined == ["shard-00000040.npz.pending"]
        assert store.n_runs == 60  # retried range re-collected in full
        records = store.quarantined()
        assert [r["reason"] for r in records] == ["failed-verification"]
        assert records[0]["seed_start"] == 40

    def test_retry_backoff_grows_exponentially(self, tmp_path):
        faults = (
            Fault("kill-worker", chunk=0, attempt=0),
            Fault("kill-worker", chunk=0, attempt=1),
        )
        store = _collect(
            tmp_path / "s", faults=faults, n_runs=20, max_attempts=4
        )
        retries = [e for e in store.read_log() if e["event"] == "chunk-retry"]
        assert [e["attempt"] for e in retries] == [1, 2]
        assert retries[1]["backoff"] == pytest.approx(2 * retries[0]["backoff"])

    def test_persistent_failure_raises_collection_error(self, tmp_path):
        faults = tuple(
            Fault("kill-worker", chunk=0, attempt=a) for a in range(3)
        )
        with pytest.raises(CollectionError, match=r"seeds \[0, 20\)") as info:
            _collect(tmp_path / "s", faults=faults, max_attempts=3)
        assert info.value.seed_start == 0
        assert info.value.count == 20
        assert info.value.attempts == 3
        # Whatever committed before the failure is still a valid store.
        store = ShardStore.open(str(tmp_path / "s"))
        assert store.audit().quarantined == []

    def test_collection_log_records_lifecycle(self, tmp_path):
        store = _collect(tmp_path / "s", n_runs=40)
        events = [e["event"] for e in store.read_log()]
        assert events[0] == "session-start"
        assert events[-1] == "session-end"
        assert events.count("chunk-start") == 2
        assert events.count("chunk-done") == 2
        assert events.count("commit") == 2
        assert all("ts" in e for e in store.read_log())

    def test_uncommitted_leftover_shard_reclaimed(self, tmp_path):
        """A shard file with no manifest entry (a session that died
        between the worker's write and the commit) must not block -- or
        leak into -- a later session covering the same seed range."""
        store_dir = tmp_path / "s"
        _collect(store_dir, n_runs=20, chunk_size=20)
        leftover = os.path.join(str(store_dir), "shard-00000020.npz")
        with open(leftover, "wb") as fh:
            fh.write(b"stale bytes from a dead session")

        store = run_trials_sharded(
            TinySubject(),
            20,
            SamplingPlan.full(),
            str(store_dir),
            seed=20,
            jobs=1,
            chunk_size=20,
        )
        assert store.n_runs == 40
        assert "reclaim-uncommitted" in [e["event"] for e in store.read_log()]
        merged, _ = store.load_merged()
        assert [m["seed"] for m in merged.metas] == list(range(40))
        assert store.audit().clean

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "kind",
        ["kill-worker", "hang-worker", "truncate-shard", "flip-bytes", "duplicate-shard"],
    )
    def test_every_worker_fault_recovers(self, tmp_path, kind):
        """Exhaustive fault matrix (slow lane): every worker-side fault
        kind is survived with the full population collected."""
        store = _collect(
            tmp_path / kind,
            faults=(Fault(kind, chunk=1),),
            chunk_timeout=1.0 if kind == "hang-worker" else None,
        )
        assert store.n_runs == 60
        assert store.audit().quarantined == []
        merged, _ = store.load_merged()
        assert [m["seed"] for m in merged.metas] == list(range(60))

    def test_faulted_run_merges_identical_to_serial(self, tmp_path):
        """The supervision loop must not perturb the population: a
        collection that survived a kill and a corruption merges
        bit-identical to the serial runner."""
        subject = TinySubject()
        program = instrument_source(subject.source(), subject.name)
        plan = SamplingPlan.uniform(0.3)
        serial_reports, serial_truth = run_trials(subject, program, 60, plan, seed=0)
        store = run_trials_sharded(
            subject,
            60,
            plan,
            str(tmp_path / "s"),
            seed=0,
            jobs=2,
            chunk_size=20,
            backoff_base=0.01,
            faults=(Fault("kill-worker", chunk=1), Fault("flip-bytes", chunk=2)),
        )
        merged_reports, merged_truth = store.load_merged()
        _assert_populations_identical(
            merged_reports, merged_truth, serial_reports, serial_truth
        )
