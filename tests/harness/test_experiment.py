"""Tests for the end-to-end experiment pipeline configuration."""

import pytest

from repro.core.elimination import DiscardStrategy
from repro.harness.experiment import Experiment, build_plan, run_experiment
from repro.instrument.tracer import instrument_source
from repro.instrument.transform import InstrumentationConfig

from tests.harness.test_runner import TinySubject


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            Experiment(
                subject=TinySubject(),
                n_runs=300,
                sampling="full",
                training_runs=0,
                seed=0,
            )
        )

    def test_summary_fields(self, result):
        summary = result.summary()
        assert summary["subject"] == "tiny"
        assert summary["successful_runs"] + summary["failing_runs"] == 300
        assert summary["sites"] == result.program.table.n_sites
        assert summary["after_elimination"] == len(result.elimination)

    def test_predictor_points_at_negative_input(self, result):
        assert result.elimination.selected
        top = result.elimination.selected[0]
        assert "value < 0" in top.predicate.name
        assert top.effective.row.increase > 0.5

    def test_loc_counts_nonblank_lines(self, result):
        assert 0 < result.lines_of_code < 30

    def test_wall_clock_recorded(self, result):
        assert result.wall_seconds > 0


class TestConfiguration:
    def test_unknown_sampling_rejected(self):
        subject = TinySubject()
        program = instrument_source(subject.source(), "tiny")
        with pytest.raises(ValueError):
            build_plan(subject, program, "bogus")

    def test_uniform_plan_uses_rate(self):
        subject = TinySubject()
        program = instrument_source(subject.source(), "tiny")
        plan = build_plan(subject, program, "uniform", rate=0.25)
        assert plan.mode == "uniform" and plan.rate == 0.25

    def test_adaptive_plan_trains(self):
        subject = TinySubject()
        program = instrument_source(subject.source(), "tiny")
        plan = build_plan(subject, program, "adaptive", training_runs=20)
        assert plan.mode == "per-site"

    def test_custom_instrumentation_config(self):
        result = run_experiment(
            Experiment(
                subject=TinySubject(),
                n_runs=50,
                sampling="full",
                training_runs=0,
                instrumentation=InstrumentationConfig(
                    returns=False, scalar_pairs=False
                ),
            )
        )
        from repro.core.predicates import Scheme

        schemes = {s.scheme for s in result.program.table.sites}
        assert schemes <= {Scheme.BRANCHES}

    def test_parallel_jobs_match_serial(self):
        serial = run_experiment(
            Experiment(
                subject=TinySubject(), n_runs=200, sampling="full",
                training_runs=0, seed=3,
            )
        )
        parallel = run_experiment(
            Experiment(
                subject=TinySubject(), n_runs=200, sampling="full",
                training_runs=0, seed=3, jobs=2,
            )
        )
        assert parallel.reports.failed.tolist() == serial.reports.failed.tolist()
        assert [p.name for p in parallel.elimination.predicates] == [
            p.name for p in serial.elimination.predicates
        ]

    def test_shard_dir_matches_in_memory(self, tmp_path):
        in_memory = run_experiment(
            Experiment(
                subject=TinySubject(), n_runs=200, sampling="full",
                training_runs=0, seed=3,
            )
        )
        sharded = run_experiment(
            Experiment(
                subject=TinySubject(), n_runs=200, sampling="full",
                training_runs=0, seed=3, jobs=2,
                shard_dir=str(tmp_path / "store"),
            )
        )
        assert sharded.reports.failed.tolist() == in_memory.reports.failed.tolist()
        assert [p.name for p in sharded.elimination.predicates] == [
            p.name for p in in_memory.elimination.predicates
        ]
        # The store stays behind for later `analyze` sessions.
        assert (tmp_path / "store" / "manifest.json").exists()

    def test_relabel_strategy_runs(self):
        result = run_experiment(
            Experiment(
                subject=TinySubject(),
                n_runs=150,
                sampling="full",
                training_runs=0,
                strategy=DiscardStrategy.RELABEL,
            )
        )
        assert result.elimination.strategy is DiscardStrategy.RELABEL
        assert result.elimination.selected
