"""Corruption-handling tests: archive-loader fuzzing, the commit
protocol's crash windows, audit reason codes, and fault-spec parsing.

Every way a shard directory can be damaged must surface as a typed error
or a quarantine record -- never a silent mis-count.
"""

import dataclasses
import json
import os
import shutil

import numpy as np
import pytest

from repro.core.io import (
    ArchiveCorruptError,
    ArchiveError,
    ArchiveVersionError,
    file_sha256,
    load_reports,
    load_shard_stats,
    save_reports,
)
from repro.store import (
    DuplicateSeedRangeError,
    Fault,
    FaultInjector,
    ShardCorruptionError,
    ShardIntegrityError,
    ShardStore,
    StaleManifestError,
    StoreError,
    SufficientStats,
    faults_from_env,
    parse_faults,
)
from repro.store.faults import damage_flip_bytes, damage_truncate, parse_fault
from repro.store.manifest import ShardEntry
from repro.store.shards import PENDING_SUFFIX, shard_filename

from tests.conftest import build_synthetic_store
from tests.helpers import make_population as _population
from tests.helpers import make_reports


def _build_store(tmp_path, k=3, n_runs=24, n_preds=4, seed=0):
    """A store of ``k`` seeded shards plus the monolithic population."""
    return build_synthetic_store(
        tmp_path / "store", k=k, n_runs=n_runs, n_preds=n_preds, seed=seed
    )


def _shard_stats(path):
    F, S, F_obs, S_obs, nf, ns, _ = load_shard_stats(path)
    # v3 stats come back as read-only file-mapping views; materialize so
    # the accumulating .add() calls below may mutate in place.
    return SufficientStats(F, S, F_obs, S_obs, nf, ns).materialized()


def _assert_stats_equal(a, b):
    np.testing.assert_array_equal(a.F, b.F)
    np.testing.assert_array_equal(a.S, b.S)
    np.testing.assert_array_equal(a.F_obs, b.F_obs)
    np.testing.assert_array_equal(a.S_obs, b.S_obs)
    assert a.num_failing == b.num_failing
    assert a.num_successful == b.num_successful


class TestLoaderFuzz:
    """The archive loader must turn every damage class into a typed error."""

    def _archive(self, tmp_path, n_runs=12):
        whole = _population(n_runs=n_runs)
        path = str(tmp_path / "reports.npz")
        save_reports(path, whole)
        return path

    @pytest.mark.parametrize("loader", [load_reports, load_shard_stats])
    def test_truncated_archive(self, tmp_path, loader):
        path = self._archive(tmp_path)
        damage_truncate(path, keep_fraction=0.5)
        with pytest.raises(ArchiveCorruptError):
            loader(path)

    @pytest.mark.parametrize("loader", [load_reports, load_shard_stats])
    def test_flipped_bytes(self, tmp_path, loader):
        path = self._archive(tmp_path)
        # Invert nearly the whole body so every member is damaged.
        damage_flip_bytes(path, n_bytes=os.path.getsize(path) - 64)
        with pytest.raises(ArchiveCorruptError):
            loader(path)

    @pytest.mark.parametrize("loader", [load_reports, load_shard_stats])
    def test_garbage_bytes(self, tmp_path, loader):
        path = str(tmp_path / "junk.npz")
        with open(path, "wb") as fh:
            fh.write(b"this is not a zip archive at all" * 8)
        with pytest.raises(ArchiveCorruptError):
            loader(path)

    @pytest.mark.parametrize("loader", [load_reports, load_shard_stats])
    def test_empty_file(self, tmp_path, loader):
        path = str(tmp_path / "empty.npz")
        open(path, "wb").close()
        with pytest.raises(ArchiveCorruptError):
            loader(path)

    @pytest.mark.parametrize("loader", [load_reports, load_shard_stats])
    def test_missing_file(self, tmp_path, loader):
        with pytest.raises(FileNotFoundError):
            loader(str(tmp_path / "absent.npz"))

    @pytest.mark.parametrize("loader", [load_reports, load_shard_stats])
    def test_unsupported_version(self, tmp_path, loader):
        path = str(tmp_path / "future.npz")
        with open(path, "wb") as fh:
            np.savez_compressed(fh, format_version=np.asarray([99]))
        with pytest.raises(ArchiveVersionError, match="version 99"):
            loader(path)

    def test_typed_errors_remain_value_errors(self):
        """Back-compat: pre-existing callers catch ValueError."""
        assert issubclass(ArchiveError, ValueError)
        assert issubclass(ArchiveCorruptError, ArchiveError)
        assert issubclass(ArchiveVersionError, ArchiveError)

    def test_corruption_cause_is_preserved(self, tmp_path):
        path = self._archive(tmp_path)
        damage_truncate(path, keep_fraction=0.3)
        with pytest.raises(ArchiveCorruptError) as info:
            load_reports(path)
        assert info.value.__cause__ is not None


class TestCommitProtocol:
    """The manifest append is the commit point; every crash window on
    either side of it is repaired by recover()."""

    def test_crash_before_commit_rolls_back(self, tmp_path):
        store, whole = _build_store(tmp_path)
        staged = os.path.join(store.directory, shard_filename(99) + PENDING_SUFFIX)
        save_reports(staged, _population(n_runs=4, seed=9))

        reopened = ShardStore.open(store.directory)
        forward, back = reopened.recover()
        assert forward == []
        assert back == [shard_filename(99) + PENDING_SUFFIX]
        assert not os.path.exists(staged)
        assert reopened.n_runs == whole.n_runs  # range was never counted

    def test_crash_after_commit_rolls_forward(self, tmp_path):
        store, whole = _build_store(tmp_path, n_runs=24)
        part = _population(n_runs=4, seed=9)
        filename = shard_filename(24)
        staged = os.path.join(store.directory, filename + PENDING_SUFFIX)
        save_reports(staged, part)
        # Simulate dying between the manifest append and the rename.
        store.register_shard(
            ShardEntry(
                filename=filename,
                n_runs=part.n_runs,
                num_failing=part.num_failing,
                seed_start=24,
                sha256=file_sha256(staged),
            )
        )

        reopened = ShardStore.open(store.directory)
        forward, back = reopened.recover()
        assert forward == [filename] and back == []
        assert os.path.exists(os.path.join(store.directory, filename))
        assert not os.path.exists(staged)
        assert reopened.audit().clean
        assert reopened.n_runs == whole.n_runs + part.n_runs

    def test_interrupted_append_never_counts(self, tmp_path, monkeypatch):
        """An append that dies at the commit point leaves the store's
        counts unchanged and only an uncommitted pending file behind."""
        store, whole = _build_store(tmp_path)

        def crash(entry):
            raise RuntimeError("simulated crash at the commit point")

        monkeypatch.setattr(store, "register_shard", crash)
        with pytest.raises(RuntimeError, match="commit point"):
            store.append_shard(_population(n_runs=4, seed=5), seed_start=24)
        monkeypatch.undo()

        reopened = ShardStore.open(store.directory)
        assert reopened.n_runs == whole.n_runs
        _, back = reopened.recover()
        assert back == [shard_filename(24) + PENDING_SUFFIX]
        # The seed range is free again: the append can simply be retried.
        reopened._table = whole.table
        reopened.append_shard(_population(n_runs=4, seed=5), seed_start=24)
        assert reopened.n_runs == whole.n_runs + 4

    def test_commit_without_pending_file_rejected(self, tmp_path):
        store, _ = _build_store(tmp_path)
        with pytest.raises(FileNotFoundError, match="pending"):
            store.commit_shard(
                ShardEntry(filename=shard_filename(99), n_runs=1, num_failing=0)
            )

    def test_recover_is_idempotent(self, tmp_path):
        store, _ = _build_store(tmp_path)
        assert store.recover() == ([], [])
        assert store.recover() == ([], [])

    def test_overlapping_registration_rejected(self, tmp_path):
        store, _ = _build_store(tmp_path, k=3, n_runs=24)  # shards at 0, 8, 16
        with pytest.raises(DuplicateSeedRangeError, match="double-count"):
            store.append_shard(_population(n_runs=8, seed=2), seed_start=4)

    def test_store_errors_share_a_base(self):
        for exc in (
            ShardCorruptionError("f", "d"),
            ShardIntegrityError("f", "d"),
            DuplicateSeedRangeError("d"),
            StaleManifestError("d"),
        ):
            assert isinstance(exc, StoreError)


class TestAuditQuarantine:
    """audit() turns every damage class into the right reason code and
    scoring over the survivors stays exact."""

    def test_flipped_shard_quarantined_by_checksum(self, tmp_path):
        store, _ = _build_store(tmp_path)
        paths = store.shard_paths()
        survivors = _shard_stats(paths[0]).add(_shard_stats(paths[2]))
        damage_flip_bytes(paths[1], n_bytes=32)

        report = store.audit()
        assert [r.reason for r in report.quarantined] == ["checksum-mismatch"]
        assert report.runs_lost == 8
        assert store.n_shards == 2
        name = os.path.basename(paths[1])
        assert os.path.exists(os.path.join(store.quarantine_dir, name))
        assert not os.path.exists(paths[1])
        _assert_stats_equal(store.sufficient_stats(), survivors)

    def test_missing_shard_quarantined(self, tmp_path):
        store, _ = _build_store(tmp_path)
        os.unlink(store.shard_paths()[0])
        report = store.audit()
        assert [r.reason for r in report.quarantined] == ["missing-file"]
        assert store.n_shards == 2
        store.sufficient_stats()  # analysis proceeds over survivors

    def test_unreadable_shard_without_digest_quarantined(self, tmp_path):
        """Entries predating recorded digests (sha256=None) still get
        caught -- by readability instead of checksum."""
        store, _ = _build_store(tmp_path)
        store.manifest.shards[1] = dataclasses.replace(
            store.manifest.shards[1], sha256=None
        )
        store.manifest.save(store.manifest_path)
        damage_truncate(store.shard_paths()[1], keep_fraction=0.4)
        report = store.audit()
        assert [r.reason for r in report.quarantined] == ["unreadable"]

    def test_alien_table_quarantined(self, tmp_path):
        store, _ = _build_store(tmp_path, n_preds=4)
        path = store.shard_paths()[1]
        alien = make_reports(9, [(True, {0}, None)] * 8)
        save_reports(path, alien)
        store.manifest.shards[1] = dataclasses.replace(
            store.manifest.shards[1], sha256=file_sha256(path)
        )
        store.manifest.save(store.manifest_path)
        report = store.audit()
        assert [r.reason for r in report.quarantined] == ["table-mismatch"]

    def test_run_count_disagreement_quarantined(self, tmp_path):
        store, _ = _build_store(tmp_path)
        entry = store.manifest.shards[1]
        store.manifest.shards[1] = dataclasses.replace(entry, n_runs=entry.n_runs + 1)
        store.manifest.save(store.manifest_path)
        report = store.audit()
        assert [r.reason for r in report.quarantined] == ["count-mismatch"]

    def test_duplicate_seed_range_quarantined(self, tmp_path):
        """A manifest that somehow carries overlapping ranges (e.g. two
        racing sessions) keeps the first and quarantines the second."""
        store, _ = _build_store(tmp_path, k=3, n_runs=24)
        first = store.manifest.shards[0]
        dup_name = shard_filename(4)
        shutil.copyfile(
            store.shard_paths()[0], os.path.join(store.directory, dup_name)
        )
        store.manifest.shards.append(
            dataclasses.replace(first, filename=dup_name, seed_start=4)
        )
        store.manifest.save(store.manifest_path)

        report = store.audit()
        assert [r.reason for r in report.quarantined] == ["duplicate-seed-range"]
        assert [r.filename for r in report.quarantined] == [dup_name]
        assert store.manifest.find(first.filename) is not None

    def test_orphan_files_reported_never_counted(self, tmp_path):
        store, _ = _build_store(tmp_path)
        orphan = "shard-99999999.npz"
        shutil.copyfile(
            store.shard_paths()[0], os.path.join(store.directory, orphan)
        )
        before = store.n_runs
        report = store.audit()
        assert report.quarantined == []
        assert report.orphans == [orphan]
        assert store.n_runs == before

    def test_reason_record_is_machine_readable(self, tmp_path):
        store, _ = _build_store(tmp_path)
        damage_flip_bytes(store.shard_paths()[1], n_bytes=32)
        store.audit()
        records = store.quarantined()
        assert len(records) == 1
        (record,) = records
        assert record["reason"] == "checksum-mismatch"
        assert record["seed_start"] == 8
        assert record["n_runs"] == 8
        assert record["quarantined_at"] > 0
        reason_path = os.path.join(
            store.quarantine_dir, record["filename"] + ".reason.json"
        )
        with open(reason_path) as fh:
            assert json.load(fh) == record

    def test_audit_is_idempotent(self, tmp_path):
        store, _ = _build_store(tmp_path)
        damage_flip_bytes(store.shard_paths()[1], n_bytes=32)
        first = store.audit()
        assert not first.clean
        second = store.audit()
        assert second.clean
        assert second.checked == 2

    def test_clean_store_audits_clean(self, tmp_path):
        store, whole = _build_store(tmp_path)
        report = store.audit()
        assert report.clean and report.checked == 3
        assert store.n_runs == whole.n_runs

    def test_streaming_reads_point_at_audit(self, tmp_path):
        store, _ = _build_store(tmp_path)
        os.unlink(store.shard_paths()[1])
        with pytest.raises(StaleManifestError, match="audit"):
            store.sufficient_stats()
        with pytest.raises(StaleManifestError, match="audit"):
            list(store.iter_reports())


class TestMixedVersionStores:
    """v1 shards (no embedded stats/signature) coexist with v2 shards;
    integrity checking covers them through the derived signature."""

    def _downgrade_to_v1(self, store, index):
        """Rewrite one shard in the legacy v1 layout, keeping its entry's
        digest honest (the bytes legitimately changed)."""
        path = store.shard_paths()[index]
        # The store writes v3 archives; rewrite through the v2 (.npz)
        # layout first so the npz-surgery below has a zip to operate on.
        reports, truth = load_reports(path)
        save_reports(path, reports, truth, version=2)
        data = dict(np.load(path, allow_pickle=False))
        for key in list(data):
            if key.startswith("stats_") or key == "table_sha":
                del data[key]
        data["format_version"] = np.asarray([1])
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **data)
        store.manifest.shards[index] = dataclasses.replace(
            store.manifest.shards[index], sha256=file_sha256(path)
        )
        store.manifest.save(store.manifest_path)

    def test_mixed_store_scores_exactly(self, tmp_path):
        store, _ = _build_store(tmp_path, k=3)
        expected = store.sufficient_stats()
        self._downgrade_to_v1(store, 1)
        assert store.audit().clean
        _assert_stats_equal(store.sufficient_stats(), expected)

    def test_v1_shard_with_alien_table_caught(self, tmp_path):
        """The v1 fallback derives the table signature from the archive,
        so even legacy shards cannot smuggle in a foreign table."""
        store, _ = _build_store(tmp_path, n_preds=4)
        path = store.shard_paths()[1]
        alien = make_reports(9, [(True, {0}, None)] * 8)
        save_reports(path, alien, version=2)
        data = dict(np.load(path, allow_pickle=False))
        for key in list(data):
            if key.startswith("stats_") or key == "table_sha":
                del data[key]
        data["format_version"] = np.asarray([1])
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **data)
        store.manifest.shards[1] = dataclasses.replace(
            store.manifest.shards[1], sha256=file_sha256(path)
        )
        store.manifest.save(store.manifest_path)
        report = store.audit()
        assert [r.reason for r in report.quarantined] == ["table-mismatch"]


class TestFaultSpecs:
    def test_parse_round_trip(self):
        fault = parse_fault("flip-bytes@2#1")
        assert fault == Fault("flip-bytes", chunk=2, attempt=1)
        assert parse_fault(fault.spec()) == fault

    def test_defaults(self):
        assert parse_fault("kill-worker") == Fault("kill-worker", chunk=0, attempt=0)
        assert parse_fault("kill-worker@3") == Fault("kill-worker", chunk=3)

    def test_comma_separated_list(self):
        faults = parse_faults("kill-worker@0, flip-bytes@2#1 ,truncate-shard@1")
        assert [f.kind for f in faults] == [
            "kill-worker",
            "flip-bytes",
            "truncate-shard",
        ]
        assert parse_faults(None) == ()
        assert parse_faults("") == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault("set-on-fire@0")

    def test_env_parsing(self):
        faults = faults_from_env({"REPRO_INJECT_FAULTS": "hang-worker@1"})
        assert faults == (Fault("hang-worker", chunk=1),)
        assert faults_from_env({}) == ()

    def test_injector_fires_exactly_once(self):
        injector = FaultInjector([Fault("kill-worker", chunk=1, attempt=0)])
        assert injector.fires("kill-worker", 1, 0)
        assert not injector.fires("kill-worker", 1, 1)  # retry is healthy
        assert not injector.fires("kill-worker", 0, 0)
        assert not injector.fires("flip-bytes", 1, 0)
        assert bool(injector)
        assert not bool(FaultInjector())

    def test_active_kinds_deduplicated_in_order(self):
        injector = FaultInjector(
            [Fault("flip-bytes", 0), Fault("kill-worker", 1), Fault("flip-bytes", 2)]
        )
        assert injector.active_kinds() == ["flip-bytes", "kill-worker"]
