"""Tests for the sharded report store: merge exactness, incremental
scoring, manifests, and instrumentation-compatibility checking."""

import json

import numpy as np
import pytest

from repro.core.io import load_shard_stats, save_reports
from repro.core.reports import ReportSet
from repro.core.scores import compute_scores
from repro.core.truth import GroundTruth
from repro.instrument.sampling import SamplingPlan
from repro.store import ShardStore, SufficientStats, plan_from_json, plan_to_json
from repro.store.manifest import ShardEntry, ShardManifest, config_digest
from repro.instrument.transform import InstrumentationConfig

from tests.helpers import make_population, make_reports, make_table, split_reports

# Local names kept for the module's many call sites; the builders
# themselves live in tests.helpers so every suite shares one copy.
_population = make_population
_split = split_reports


def _assert_counters_equal(a, b):
    """Exact integer equality of all sufficient statistics."""
    np.testing.assert_array_equal(a.F, b.F)
    np.testing.assert_array_equal(a.S, b.S)
    np.testing.assert_array_equal(a.F_obs, b.F_obs)
    np.testing.assert_array_equal(a.S_obs, b.S_obs)
    assert a.num_failing == b.num_failing
    assert a.num_successful == b.num_successful


class TestReportSetMerge:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_merge_of_k_shards_equals_monolithic(self, k):
        whole = _population(n_preds=5, n_runs=30)
        merged = ReportSet.merge(_split(whole, k))
        assert merged.n_runs == whole.n_runs
        assert merged.failed.tolist() == whole.failed.tolist()
        assert (merged.true_counts != whole.true_counts).nnz == 0
        assert (merged.site_counts != whole.site_counts).nnz == 0
        assert merged.stacks == whole.stacks
        assert merged.metas == whole.metas

    @pytest.mark.parametrize("k", [2, 4])
    def test_merged_scores_exactly_equal(self, k):
        whole = _population(n_preds=6, n_runs=40, seed=3)
        merged = ReportSet.merge(_split(whole, k))
        _assert_counters_equal(compute_scores(merged), compute_scores(whole))

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            ReportSet.merge([])

    def test_mismatched_tables_rejected(self):
        a = make_reports(3, [(True, {0}, None)])
        b = make_reports(4, [(False, {1}, None)])
        with pytest.raises(ValueError, match="different predicate table"):
            ReportSet.merge([a, b])


class TestSufficientStats:
    def test_shard_sum_equals_monolithic(self):
        whole = _population(n_preds=5, n_runs=36, seed=7)
        total = SufficientStats.zeros(whole.n_predicates)
        for part in _split(whole, 4):
            total.add(SufficientStats.from_reports(part))
        _assert_counters_equal(total, compute_scores(whole))

    def test_to_scores_bit_identical_to_compute_scores(self):
        whole = _population(n_preds=5, n_runs=36, seed=11)
        total = SufficientStats.zeros(whole.n_predicates)
        for part in _split(whole, 3):
            total = total + SufficientStats.from_reports(part)
        inc = total.to_scores()
        mono = compute_scores(whole)
        _assert_counters_equal(inc, mono)
        np.testing.assert_array_equal(inc.failure, mono.failure)
        np.testing.assert_array_equal(inc.context, mono.context)
        np.testing.assert_array_equal(inc.increase, mono.increase)
        np.testing.assert_array_equal(inc.increase_lo, mono.increase_lo)
        np.testing.assert_array_equal(inc.z, mono.z)
        np.testing.assert_array_equal(inc.defined, mono.defined)

    def test_predicate_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="different tables"):
            SufficientStats.zeros(3).add(SufficientStats.zeros(4))


class TestShardStore:
    def _store(self, tmp_path, whole, k=3):
        table = whole.table
        store = ShardStore.create(
            str(tmp_path / "store"), "synthetic", table, SamplingPlan.full()
        )
        for part in _split(whole, k):
            store.append_shard(part)
        return store

    def test_append_and_reopen(self, tmp_path):
        whole = _population(n_runs=18)
        store = self._store(tmp_path, whole)
        assert store.n_shards == 3
        reopened = ShardStore.open(store.directory)
        assert reopened.n_runs == whole.n_runs
        assert reopened.num_failing == whole.num_failing

    def test_load_merged_equals_monolithic(self, tmp_path):
        whole = _population(n_preds=5, n_runs=30, seed=5)
        store = self._store(tmp_path, whole, k=4)
        merged, truth = ShardStore.open(store.directory).load_merged()
        assert truth is None
        assert merged.failed.tolist() == whole.failed.tolist()
        assert (merged.true_counts != whole.true_counts).nnz == 0
        assert (merged.site_counts != whole.site_counts).nnz == 0

    def test_incremental_scores_equal_monolithic(self, tmp_path):
        whole = _population(n_preds=6, n_runs=42, seed=9)
        store = self._store(tmp_path, whole, k=5)
        streaming = ShardStore.open(store.directory).compute_scores()
        mono = compute_scores(whole)
        _assert_counters_equal(streaming, mono)
        np.testing.assert_array_equal(streaming.increase, mono.increase)

    def test_truth_merged_across_shards(self, tmp_path):
        whole = _population(n_runs=12)
        truth = GroundTruth(bug_ids=["b"])
        for failed in whole.failed:
            truth.add_run(["b"] if failed else [])
        store = ShardStore.create(
            str(tmp_path / "store"), "synthetic", whole.table, SamplingPlan.full()
        )
        parts = _split(whole, 3)
        offset = 0
        for part in parts:
            mask = np.zeros(whole.n_runs, dtype=bool)
            mask[offset : offset + part.n_runs] = True
            store.append_shard(part, truth=truth.subset(mask))
            offset += part.n_runs
        _, merged_truth = ShardStore.open(store.directory).load_merged()
        assert merged_truth is not None
        assert merged_truth.occurrences == truth.occurrences

    def test_mismatched_table_shard_rejected(self, tmp_path):
        whole = _population(n_runs=10)
        store = self._store(tmp_path, whole)
        alien = make_reports(9, [(True, {0}, None)])
        with pytest.raises(ValueError, match="different predicate table"):
            store.append_shard(alien)

    def test_open_or_create_rejects_other_subject(self, tmp_path):
        whole = _population(n_runs=10)
        store = self._store(tmp_path, whole)
        with pytest.raises(ValueError, match="subject"):
            ShardStore.open_or_create(
                store.directory, "other", whole.table, SamplingPlan.full()
            )

    def test_open_or_create_rejects_other_config(self, tmp_path):
        whole = _population(n_runs=10)
        store = self._store(tmp_path, whole)
        with pytest.raises(ValueError, match="configuration"):
            ShardStore.open_or_create(
                store.directory,
                "synthetic",
                whole.table,
                SamplingPlan.full(),
                config=InstrumentationConfig(scalar_pairs=False),
            )

    def test_empty_store_scoring_rejected(self, tmp_path):
        table = make_table(3)
        store = ShardStore.create(
            str(tmp_path / "s"), "synthetic", table, SamplingPlan.full()
        )
        with pytest.raises(ValueError):
            store.sufficient_stats()

    def test_duplicate_registration_rejected(self, tmp_path):
        whole = _population(n_runs=10)
        store = self._store(tmp_path, whole, k=1)
        entry = store.manifest.shards[0]
        with pytest.raises(ValueError, match="already registered"):
            store.register_shard(
                ShardEntry(entry.filename, entry.n_runs, entry.num_failing)
            )

    def test_stats_read_does_not_rebuild_matrices(self, tmp_path):
        """v2 shards expose their statistics without CSR reconstruction."""
        whole = _population(n_preds=4, n_runs=16)
        store = self._store(tmp_path, whole, k=2)
        path = store.shard_paths()[0]
        F, S, F_obs, S_obs, numf, nums, sha = load_shard_stats(path)
        assert sha == whole.table.signature()
        first, _ = next(iter(ShardStore.open(store.directory).iter_reports()))
        _assert_counters_equal(
            SufficientStats(F, S, F_obs, S_obs, numf, nums),
            compute_scores(first),
        )


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = ShardManifest(
            subject="moss",
            table_sha="ab" * 32,
            config_sha=config_digest(None),
            plan=plan_to_json(SamplingPlan.uniform(0.05)),
            shards=[ShardEntry("shard-00000000.npz", 100, 7, seed_start=0)],
        )
        path = str(tmp_path / "manifest.json")
        manifest.save(path)
        loaded = ShardManifest.load(path)
        assert loaded == manifest
        assert loaded.n_runs == 100 and loaded.num_failing == 7
        assert loaded.next_seed == 100

    def test_plan_round_trip_all_modes(self):
        for plan in (
            SamplingPlan.full(),
            SamplingPlan.uniform(0.25),
            SamplingPlan.per_site([0.5, 1.0, 0.01]),
        ):
            back = plan_from_json(json.loads(json.dumps(plan_to_json(plan))))
            assert back.mode == plan.mode
            if plan.mode == "uniform":
                assert back.rate == plan.rate
            if plan.mode == "per-site":
                np.testing.assert_array_equal(back.site_rates, plan.site_rates)

    def test_config_digest_stable_for_defaults(self):
        assert config_digest(None) == config_digest(InstrumentationConfig())
        assert config_digest(None) != config_digest(
            InstrumentationConfig(branches=False)
        )

    def test_newer_manifest_version_rejected(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        with open(path, "w") as fh:
            json.dump(
                {
                    "manifest_version": 99,
                    "subject": "x",
                    "table_sha": "0" * 64,
                    "config_sha": "0" * 64,
                    "plan": {"mode": "full"},
                    "shards": [],
                },
                fh,
            )
        with pytest.raises(ValueError, match="newer"):
            ShardManifest.load(path)

    def test_open_without_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardStore.open(str(tmp_path))


class TestV1ShardFallback:
    def test_load_shard_stats_from_v1_archive(self, tmp_path):
        """v1 archives lack embedded stats; they are derived by loading."""
        whole = _population(n_preds=4, n_runs=12)
        path = str(tmp_path / "v1.npz")
        save_reports(path, whole, version=2)
        # Downgrade the archive to the v1 layout: strip the v2-only keys.
        data = dict(np.load(path, allow_pickle=False))
        for key in list(data):
            if key.startswith("stats_") or key == "table_sha":
                del data[key]
        data["format_version"] = np.asarray([1])
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **data)

        F, S, F_obs, S_obs, numf, nums, sha = load_shard_stats(path)
        # v1 archives carry no embedded signature; it is derived from the
        # materialised table so integrity checks still cover v1 shards.
        assert sha == whole.table.signature()
        _assert_counters_equal(
            SufficientStats(F, S, F_obs, S_obs, numf, nums), compute_scores(whole)
        )
