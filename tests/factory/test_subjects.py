"""FactorySubject: protocol conformance, budgets, oracles, determinism."""

import pickle
import random

import pytest

from repro.factory import corpus
from repro.factory.mutate import MUTATION_CLASSES, MutationSpec
from repro.factory.subjects import (
    MAX_BUDGET,
    MIN_BUDGET,
    FactorySubject,
    corpus_subjects,
)


def _wrapx_subject(**kwargs):
    return FactorySubject(
        name="wrapx-test",
        package="wrapx",
        modules=corpus.corpus_sources("wrapx"),
        generator=corpus.wrapx_job,
        mutation=MutationSpec(
            bug_id="wrapx-test",
            module="wrapx",
            operator="operator-swap",
            occurrence=0,
        ),
        **kwargs,
    )


class TestProtocol:
    def test_kind_and_entry(self):
        subject = _wrapx_subject()
        assert subject.kind == "factory"
        assert subject.entry == "main"
        assert subject.bug_ids == ("wrapx-test",)

    def test_mutation_class_property(self):
        assert _wrapx_subject().mutation_class == "operator-swap"
        plain = FactorySubject(
            name="plain",
            package="wrapx",
            modules=corpus.corpus_sources("wrapx"),
            generator=corpus.wrapx_job,
        )
        assert plain.mutation_class is None

    def test_mutation_must_target_a_module(self):
        with pytest.raises(ValueError, match="not a module"):
            FactorySubject(
                name="x",
                package="wrapx",
                modules=corpus.corpus_sources("wrapx"),
                generator=corpus.wrapx_job,
                mutation=MutationSpec(
                    bug_id="x",
                    module="nothere",
                    operator="off-by-one",
                    occurrence=0,
                ),
            )

    def test_source_contains_stamp(self):
        assert "record_bug('wrapx-test')" in _wrapx_subject().source()

    def test_bug_sites_module_qualified(self):
        sites = _wrapx_subject().bug_sites()
        assert len(sites) == 1
        assert sites[0].bug_id == "wrapx-test"
        assert sites[0].function.startswith("wrapx:")

    def test_subject_pickles(self):
        subject = _wrapx_subject(trial_budget=500)
        clone = pickle.loads(pickle.dumps(subject))
        assert clone.name == subject.name
        assert clone.source() == subject.source()
        rng_a, rng_b = random.Random(3), random.Random(3)
        assert clone.generate_input(rng_a) == subject.generate_input(rng_b)


class TestOracle:
    def test_differential_oracle_accepts_pristine_behaviour(self):
        subject = _wrapx_subject()
        job = {"op": "dedent", "text": "  a\n  b", "width": 10, "prefix": "> "}
        from repro.factory.loader import pristine_namespace

        expected = pristine_namespace("wrapx", corpus.corpus_sources("wrapx"))[
            "main"
        ](job)
        assert subject.oracle(job, expected) is True
        assert subject.oracle(job, "definitely wrong") is False

    def test_custom_oracle_wins(self):
        subject = FactorySubject(
            name="x",
            package="wrapx",
            modules=corpus.corpus_sources("wrapx"),
            generator=corpus.wrapx_job,
            oracle=lambda _inp, out: out == "ok",
        )
        assert subject.oracle({}, "ok") is True
        assert subject.oracle({}, "nope") is False


class TestTrialBudget:
    def test_fixed_budget_respected(self):
        assert _wrapx_subject(trial_budget=1234).trial_budget == 1234

    def test_derived_budget_deterministic_and_clamped(self):
        subject = _wrapx_subject()
        budget = subject.derive_trial_budget(probe_trials=24)
        again = _wrapx_subject().derive_trial_budget(probe_trials=24)
        assert budget == again
        assert MIN_BUDGET <= budget <= MAX_BUDGET

    def test_budget_cached_per_name(self):
        subject = _wrapx_subject()
        first = subject.trial_budget
        assert subject.trial_budget == first


class TestCorpusRegistry:
    def test_corpus_names_match_bugs(self):
        entries = corpus_subjects()
        assert set(entries) == {bug.name for bug in corpus.CORPUS_BUGS}
        assert len(entries) >= 10

    def test_all_mutation_classes_and_packages_covered(self):
        classes = {bug.spec.operator for bug in corpus.CORPUS_BUGS}
        packages = {bug.package for bug in corpus.CORPUS_BUGS}
        assert classes == set(MUTATION_CLASSES)
        assert packages == set(corpus.corpus_packages())

    def test_entries_construct_and_pickle(self):
        entries = corpus_subjects()
        name = sorted(entries)[0]
        subject = entries[name]()
        assert subject.kind == "factory"
        assert subject.name == name
        clone = pickle.loads(pickle.dumps(entries[name]))
        assert clone().name == name

    def test_every_spec_within_candidate_range(self):
        """Pinned occurrence indices must be valid for their module --
        a stale index after editing corpus sources fails here, not
        deep inside a collection run."""
        from repro.factory.mutate import count_candidates

        for bug in corpus.CORPUS_BUGS:
            source = corpus.corpus_sources(bug.package)[bug.spec.module]
            n = count_candidates(source, bug.spec.operator)
            assert 0 <= bug.spec.occurrence < n, (bug.name, n)


class TestShardDeterminism:
    def test_shard_shas_bit_identical_across_builds(self, tmp_path):
        """Two independent factory builds of the same package+spec must
        produce byte-identical shard files for the same seeds."""
        from repro.core.io import file_sha256
        from repro.harness.parallel import run_trials_sharded
        from repro.instrument.sampling import SamplingPlan

        digests = []
        for build in ("a", "b"):
            subject = _wrapx_subject(trial_budget=400)
            store = run_trials_sharded(
                subject,
                40,
                SamplingPlan.full(),
                str(tmp_path / build),
                seed=0,
                jobs=2,
                chunk_size=10,
            )
            digests.append(
                [file_sha256(path) for path in sorted(store.shard_paths())]
            )
        assert digests[0] == digests[1]
        assert len(digests[0]) == 4
