"""The seeded corpus end-to-end: failure rates and isolation quality.

These are the acceptance tests for the mutation corpus: every pinned
bug must actually fail sometimes (but not always) over its generator's
input distribution, and every injected bug must be isolated at rank
<= 5 by at least one registered suspiciousness measure.  One shared
bake-off run feeds both, so the lane stays affordable.
"""

import pytest

from repro.factory import corpus
from repro.factory.subjects import corpus_subjects
from repro.harness.bakeoff import run_bakeoff

RUNS = 300
ISOLATION_RANK = 5

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def bakeoff_document():
    return run_bakeoff(corpus_subjects(), runs=RUNS, seed=0)


BUG_NAMES = sorted(bug.name for bug in corpus.CORPUS_BUGS)


class TestFailureRates:
    @pytest.mark.parametrize("name", BUG_NAMES)
    def test_failure_rate_strictly_inside_unit_interval(
        self, bakeoff_document, name
    ):
        doc = bakeoff_document["subjects"][name]
        assert doc["runs"] == RUNS
        assert 0 < doc["failing"] < RUNS, (name, doc["failing"])

    @pytest.mark.parametrize("name", BUG_NAMES)
    def test_injected_bug_occurs_and_is_gradeable(self, bakeoff_document, name):
        doc = bakeoff_document["subjects"][name]
        assert doc["kind"] == "factory"
        assert doc["faulty_predicates"] > 0
        assert doc["bug_sites"][0]["bug_id"] == name


class TestIsolation:
    @pytest.mark.parametrize("name", BUG_NAMES)
    def test_some_measure_isolates_within_rank_five(
        self, bakeoff_document, name
    ):
        """ISSUE acceptance: each injected bug ranks <= 5 under at least
        one registered measure."""
        ranks = {}
        for entry in bakeoff_document["measures"]:
            cell = entry["results"][name]
            ranks[entry["measure"]] = cell["rank_of_first_faulty_site"]
        best = min(r for r in ranks.values() if r is not None)
        assert best <= ISOLATION_RANK, (name, ranks)

    def test_mutation_classes_section_summarises_every_class(
        self, bakeoff_document
    ):
        section = bakeoff_document["mutation_classes"]
        classes = {bug.spec.operator for bug in corpus.CORPUS_BUGS}
        for measure, per_class in section.items():
            assert set(per_class) == classes, measure
            for cls, summary in per_class.items():
                assert summary["subjects"] == len(
                    [b for b in corpus.CORPUS_BUGS if b.spec.operator == cls]
                )
                assert set(summary["ranks"]) <= set(BUG_NAMES)
