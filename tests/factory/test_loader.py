"""Whole-package instrumentation: shared tables, stability, hygiene."""

import sys

import pytest

from repro.factory import corpus
from repro.factory.loader import (
    function_prefix,
    instrument_package,
    module_filename,
    package_modules,
    pristine_namespace,
    program_filename,
)


@pytest.fixture(scope="module")
def jsonscan_program():
    return instrument_package(
        "jsonscan", modules=corpus.corpus_sources("jsonscan")
    )


class TestMultiModule:
    def test_cross_module_imports_share_one_table(self, jsonscan_program):
        """Both modules' sites land in a single PredicateTable, with
        module-qualified function names keeping them distinct."""
        table = jsonscan_program.table
        prefixes = {site.function.split(":", 1)[0] for site in table.sites}
        assert prefixes == {"jsonscan", "jsonscan.scanner"}
        # The root module's parse() drives scanner functions through a
        # real cross-module import; both must observe into the table.
        entry = jsonscan_program.func("main")
        from repro.instrument.sampling import SamplingPlan

        jsonscan_program.begin_run(SamplingPlan.full(), seed=1)
        entry({"op": "parse", "text": "[1, 2, {\"a\": null}]"})
        site_obs, _pred_true = jsonscan_program.end_run()
        observed_functions = {
            table.sites[i].function for i in site_obs
        }
        assert any(f.startswith("jsonscan.scanner:") for f in observed_functions)
        assert any(f.startswith("jsonscan:") for f in observed_functions)

    def test_site_ids_stable_across_reinstrumentation(self):
        sources = corpus.corpus_sources("jsonscan")
        first = instrument_package("jsonscan", modules=sources)
        second = instrument_package("jsonscan", modules=sources)
        assert first.table.signature() == second.table.signature()
        assert [
            (s.index, s.function, s.line, str(s.scheme))
            for s in first.table.sites
        ] == [
            (s.index, s.function, s.line, str(s.scheme))
            for s in second.table.sites
        ]

    def test_every_module_body_executed_upfront(self, jsonscan_program):
        assert set(jsonscan_program.modules) == {"jsonscan", "jsonscan.scanner"}
        scanner = jsonscan_program.modules["jsonscan.scanner"]
        assert callable(scanner.tokenize)

    def test_namespace_is_root_module_globals(self, jsonscan_program):
        assert callable(jsonscan_program.func("main"))
        assert callable(jsonscan_program.func("parse"))

    def test_filenames_share_crash_stack_prefix(self):
        prog = program_filename("jsonscan")
        mod = module_filename("jsonscan", "jsonscan.scanner")
        assert mod.startswith(prog.rstrip(">"))

    def test_function_prefix_shape(self):
        assert function_prefix("jsonscan.scanner") == "jsonscan.scanner:"


class TestInterpreterHygiene:
    def test_sys_modules_not_polluted(self):
        assert "jsonscan" not in sys.modules
        instrument_package("jsonscan", modules=corpus.corpus_sources("jsonscan"))
        assert "jsonscan" not in sys.modules
        assert "jsonscan.scanner" not in sys.modules

    def test_shadowed_modules_restored(self):
        sentinel = object()
        sys.modules["jsonscan"] = sentinel
        try:
            instrument_package(
                "jsonscan", modules=corpus.corpus_sources("jsonscan")
            )
            assert sys.modules["jsonscan"] is sentinel
        finally:
            del sys.modules["jsonscan"]

    def test_meta_path_restored(self):
        before = list(sys.meta_path)
        instrument_package("jsonscan", modules=corpus.corpus_sources("jsonscan"))
        assert sys.meta_path == before

    def test_root_module_required(self):
        with pytest.raises(ValueError, match="root module"):
            instrument_package("jsonscan", modules={"jsonscan.scanner": "x = 1"})


class TestPristine:
    def test_pristine_namespace_uninstrumented_and_cached(self):
        sources = corpus.corpus_sources("jsonscan")
        ns = pristine_namespace("jsonscan", sources)
        assert ns["parse"]('{"k": [1, 2]}') == {"k": [1, 2]}
        assert "_cbi" not in ns
        assert pristine_namespace("jsonscan", sources) is ns

    def test_distinct_sources_get_distinct_cache_entries(self):
        sources = corpus.corpus_sources("jsonscan")
        mutated = dict(sources)
        mutated["jsonscan.scanner"] = sources["jsonscan.scanner"].replace(
            "def tokenize", "def _renamed_tokenize", 1
        )
        assert pristine_namespace("jsonscan", sources) is not pristine_namespace(
            "jsonscan", mutated
        )


class TestPackageModules:
    def test_reads_installed_package(self):
        mods = package_modules("json")
        assert "json" in mods
        assert "json.decoder" in mods
        assert "def loads" in mods["json"]

    def test_plain_module_maps_to_itself(self):
        mods = package_modules("bisect")
        assert set(mods) == {"bisect"}

    def test_missing_package_rejected(self):
        with pytest.raises(ModuleNotFoundError):
            package_modules("no_such_package_xyz")
