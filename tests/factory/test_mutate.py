"""The deterministic mutation engine: candidates, stamps, determinism."""

import ast

import pytest

from repro.factory.mutate import (
    MUTATION_CLASSES,
    MutationSpec,
    apply_mutation,
    count_candidates,
)

SAMPLE = '''\
LIMIT = 10 - 3  # module-level: never a candidate

def clamp(x, lo=0 + 1, hi=9):
    if x < lo:
        return lo
    while x > hi:
        x = x - 1
    return x

class Box:
    SIZE = 4 + 4  # class body: never a candidate

    def shrink(self, n):
        if n <= self.SIZE:
            return n + 1
        return n

square = lambda v: v * v  # lambda body: never a candidate
'''


def _spec(operator, occurrence, bug_id="b1", module="m"):
    return MutationSpec(
        bug_id=bug_id, module=module, operator=operator, occurrence=occurrence
    )


class TestCandidates:
    def test_counts_exclude_non_function_code(self):
        # operator-swap: `x - 1` in clamp, `n + 1` in shrink.  The
        # module-level `10 - 3`, the default `0 + 1`, the class-body
        # `4 + 4` and the lambda `v * v` are all excluded.
        assert count_candidates(SAMPLE, "operator-swap") == 2
        # negated-condition: the if and while in clamp, the if in shrink.
        assert count_candidates(SAMPLE, "negated-condition") == 3
        # boundary-relaxation: x < lo, x > hi, n <= self.SIZE.
        assert count_candidates(SAMPLE, "boundary-relaxation") == 3

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation operator"):
            count_candidates(SAMPLE, "bit-flip")

    def test_occurrence_out_of_range_raises_index_error(self):
        n = count_candidates(SAMPLE, "operator-swap")
        with pytest.raises(IndexError, match="out of range"):
            apply_mutation(SAMPLE, _spec("operator-swap", n))

    @pytest.mark.parametrize("operator", MUTATION_CLASSES)
    def test_every_class_has_candidates_here(self, operator):
        assert count_candidates(SAMPLE, operator) > 0


class TestApply:
    @pytest.mark.parametrize("operator", MUTATION_CLASSES)
    def test_deterministic(self, operator):
        a = apply_mutation(SAMPLE, _spec(operator, 0))
        b = apply_mutation(SAMPLE, _spec(operator, 0))
        assert a == b

    @pytest.mark.parametrize("operator", MUTATION_CLASSES)
    def test_mutant_compiles_and_differs(self, operator):
        mutated = apply_mutation(SAMPLE, _spec(operator, 0))
        compile(mutated, "<mutant>", "exec")
        assert ast.dump(ast.parse(mutated)) != ast.dump(ast.parse(SAMPLE))

    @pytest.mark.parametrize("operator", MUTATION_CLASSES)
    def test_stamp_lands_inside_a_function(self, operator):
        """record_bug must sit in the function owning the mutated node,
        so function-granularity ground truth attributes it correctly."""
        mutated = apply_mutation(SAMPLE, _spec(operator, 0, bug_id="tag77"))
        assert mutated.count("record_bug('tag77')") == 1
        tree = ast.parse(mutated)
        hits = []
        for fn in ast.walk(tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "record_bug"
                    ):
                        hits.append(fn.name)
        assert len(hits) == 1

    def test_occurrences_hit_distinct_nodes(self):
        first = apply_mutation(SAMPLE, _spec("operator-swap", 0))
        second = apply_mutation(SAMPLE, _spec("operator-swap", 1))
        assert first != second
        assert "x + 1" in first  # clamp's `x - 1` swapped
        assert "n - 1" in second  # shrink's `n + 1` swapped

    def test_off_by_one_increments_int_literal(self):
        mutated = apply_mutation(SAMPLE, _spec("off-by-one", 0))
        # First in-function int literal is `lo` comparison path's... the
        # `1` in `x - 1` stays; the first candidate in source order is
        # the `1` of `x = x - 1` only after the comparisons, which hold
        # no literals -- so `x = x - 2` appears.
        assert "x - 2" in mutated

    def test_negated_condition_wraps_test(self):
        mutated = apply_mutation(SAMPLE, _spec("negated-condition", 0))
        assert "if not x < lo:" in mutated

    def test_boundary_relaxation_flips_strictness(self):
        mutated = apply_mutation(SAMPLE, _spec("boundary-relaxation", 0))
        assert "x <= lo" in mutated

    def test_mutant_behaviour_actually_changes(self):
        namespace_good, namespace_bad = {}, {}
        exec(compile(SAMPLE, "<good>", "exec"), namespace_good)
        mutated = apply_mutation(SAMPLE, _spec("negated-condition", 0))
        namespace_bad["record_bug"] = lambda _bug: None
        exec(compile(mutated, "<bad>", "exec"), namespace_bad)
        inputs = range(-3, 14)
        good = [namespace_good["clamp"](x) for x in inputs]
        bad = [namespace_bad["clamp"](x) for x in inputs]
        assert good != bad
