"""Tests for the simulated C heap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmem.errors import SimDoubleFree, SimOutOfMemory, SimSegfault
from repro.simmem.heap import NULL, SimBuffer, SimHeap, memcpy


class TestBasicAllocation:
    def test_write_read_roundtrip(self):
        heap = SimHeap(seed=1)
        buf = heap.malloc(8)
        for i in range(8):
            buf.write(i, i * i)
        assert buf.to_list() == [i * i for i in range(8)]

    def test_calloc_zero_fills(self):
        heap = SimHeap(seed=1)
        buf = heap.calloc(5)
        assert buf.to_list() == [0, 0, 0, 0, 0]

    def test_uninitialised_reads_return_garbage_not_crash(self):
        heap = SimHeap(seed=1)
        buf = heap.malloc(3)
        value = buf.read(0)
        assert isinstance(value, int)

    def test_len_and_bool(self):
        heap = SimHeap(seed=1)
        buf = heap.malloc(4)
        assert len(buf) == 4
        assert bool(buf)
        assert not NULL
        assert len(NULL) == 0

    def test_negative_malloc_segfaults(self):
        heap = SimHeap(seed=1)
        with pytest.raises(SimSegfault):
            heap.malloc(-1)

    def test_capacity_exhaustion(self):
        heap = SimHeap(seed=1, capacity=64)
        with pytest.raises(SimOutOfMemory):
            for _ in range(100):
                heap.malloc(8)

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 20), min_size=1, max_size=10),
        seed=st.integers(0, 1000),
    )
    def test_in_bounds_writes_never_interfere(self, sizes, seed):
        """Integrity property: with only in-bounds access, every buffer
        keeps exactly its own data, whatever the layout."""
        heap = SimHeap(seed=seed)
        bufs = [heap.malloc(n) for n in sizes]
        for k, buf in enumerate(bufs):
            for i in range(len(buf)):
                buf.write(i, k * 1000 + i)
        for k, buf in enumerate(bufs):
            assert buf.to_list() == [k * 1000 + i for i in range(len(buf))]
        assert heap.metadata_intact()


class TestNullAndFree:
    def test_null_dereference_segfaults(self):
        with pytest.raises(SimSegfault):
            NULL.read(0)
        with pytest.raises(SimSegfault):
            NULL.write(0, 1)

    def test_free_null_is_noop(self):
        heap = SimHeap(seed=1)
        heap.free(NULL)

    def test_double_free_detected(self):
        heap = SimHeap(seed=1)
        buf = heap.malloc(4)
        heap.free(buf)
        with pytest.raises(SimDoubleFree):
            heap.free(buf)

    def test_use_after_free_segfaults(self):
        heap = SimHeap(seed=1)
        buf = heap.malloc(4)
        heap.free(buf)
        with pytest.raises(SimSegfault):
            buf.read(0)
        with pytest.raises(SimSegfault):
            buf.write(0, 1)

    def test_free_of_garbage_segfaults(self):
        heap = SimHeap(seed=1)
        with pytest.raises(SimSegfault):
            heap.free(42)


class TestOutOfBounds:
    def test_wild_access_far_outside_heap_segfaults(self):
        heap = SimHeap(seed=1)
        buf = heap.malloc(4)
        with pytest.raises(SimSegfault):
            buf.write(100000, 1)
        with pytest.raises(SimSegfault):
            buf.read(-100000)

    def test_small_overrun_into_trailing_space_is_silent(self):
        heap = SimHeap(seed=1)
        buf = heap.malloc(4)  # last allocation: nothing after it
        buf.write(4 + heap.max_pad + 1, 7)  # beyond own pad, still in-range
        assert heap.metadata_intact() or True  # no exception is the point

    def test_overrun_can_corrupt_neighbour_silently(self):
        """With zero padding the next allocation's first cell follows the
        previous allocation's header; index size+1 lands on it."""
        heap = SimHeap(seed=1, max_pad=0)
        a = heap.malloc(4)
        b = heap.malloc(4)
        b.write(0, 111)
        a.write(5, 999)  # a[4] = b's header, a[5] = b[0]
        assert b.read(0) == 999

    def test_header_corruption_defers_crash_to_free(self):
        heap = SimHeap(seed=1, max_pad=0)
        a = heap.malloc(4)
        b = heap.malloc(4)
        a.write(4, 123)  # exactly b's header cell
        assert not heap.metadata_intact()
        with pytest.raises(SimSegfault):
            heap.free(b)

    def test_header_corruption_defers_crash_to_malloc(self):
        heap = SimHeap(seed=1, max_pad=0)
        a = heap.malloc(4)
        heap.malloc(4)
        a.write(4, 123)
        with pytest.raises(SimSegfault):
            heap.malloc(2)  # the allocator walks the corrupted heap

    def test_oob_read_of_live_neighbour_sees_its_data(self):
        heap = SimHeap(seed=1, max_pad=0)
        a = heap.malloc(2)
        b = heap.malloc(2)
        b.write(0, 55)
        assert a.read(3) == 55  # a[2]=header, a[3]=b[0]


class TestOomInjection:
    def test_injection_only_on_can_fail_sites(self):
        heap = SimHeap(seed=1, oom_rate=1.0)
        assert heap.malloc(4) is not NULL  # robust site
        assert heap.malloc(4, True) is NULL  # injectable site

    def test_no_injection_when_rate_zero(self):
        heap = SimHeap(seed=1, oom_rate=0.0)
        for _ in range(50):
            assert heap.malloc(1, True) is not NULL


class TestMemcpy:
    def test_copies_cells(self):
        heap = SimHeap(seed=1)
        src = heap.malloc(4)
        dst = heap.malloc(4)
        for i in range(4):
            src.write(i, i + 1)
        memcpy(dst, src, 4)
        assert dst.to_list() == [1, 2, 3, 4]

    def test_null_source_segfaults(self):
        heap = SimHeap(seed=1)
        dst = heap.malloc(4)
        with pytest.raises(SimSegfault):
            memcpy(dst, NULL, 4)

    def test_freed_source_segfaults(self):
        heap = SimHeap(seed=1)
        src = heap.malloc(4)
        dst = heap.malloc(4)
        heap.free(src)
        with pytest.raises(SimSegfault):
            memcpy(dst, src, 1)

    def test_non_pointer_segfaults(self):
        heap = SimHeap(seed=1)
        dst = heap.malloc(4)
        with pytest.raises(SimSegfault):
            memcpy(dst, [1, 2, 3], 3)


class TestLayoutRandomisation:
    def test_layouts_differ_across_seeds(self):
        bases = set()
        for seed in range(20):
            heap = SimHeap(seed=seed)
            heap.malloc(4)
            second = heap.malloc(4)
            bases.add(second.base)
        assert len(bases) > 1

    def test_same_seed_same_layout(self):
        def layout(seed):
            heap = SimHeap(seed=seed)
            return [heap.malloc(3).base for _ in range(5)]

        assert layout(9) == layout(9)

    def test_live_allocation_count(self):
        heap = SimHeap(seed=1)
        a = heap.malloc(2)
        b = heap.malloc(2)
        assert heap.live_allocations() == 2
        heap.free(a)
        assert heap.live_allocations() == 1
