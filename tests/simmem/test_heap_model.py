"""Model-based property testing of the simulated heap.

A reference model (plain dicts) tracks what a correct C program would
see; random in-bounds operation sequences against the simulated heap
must agree with the model exactly, under every layout seed.  This is the
load-bearing guarantee for the whole evaluation: subjects only misbehave
when they actually commit a memory error.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmem.errors import SimSegfault
from repro.simmem.heap import NULL, SimHeap


@st.composite
def _operation_sequences(draw):
    """A random schedule of malloc/write/read/free operations."""
    n_ops = draw(st.integers(5, 40))
    ops = []
    n_allocs = 0
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["malloc", "write", "read", "free"]))
        if kind == "malloc":
            ops.append(("malloc", draw(st.integers(1, 16))))
            n_allocs += 1
        elif n_allocs == 0:
            continue
        elif kind == "write":
            ops.append(
                (
                    "write",
                    draw(st.integers(0, n_allocs - 1)),
                    draw(st.integers(0, 200)),
                    draw(st.integers(-(2 ** 30), 2 ** 30)),
                )
            )
        elif kind == "read":
            ops.append(("read", draw(st.integers(0, n_allocs - 1)), draw(st.integers(0, 200))))
        else:
            ops.append(("free", draw(st.integers(0, n_allocs - 1))))
    return ops


class TestAgainstModel:
    @settings(max_examples=80, deadline=None)
    @given(ops=_operation_sequences(), seed=st.integers(0, 10 ** 6))
    def test_in_bounds_behaviour_matches_reference_model(self, ops, seed):
        heap = SimHeap(seed=seed)
        buffers = []
        model = []  # list of dict|None (None = freed)

        for op in ops:
            if op[0] == "malloc":
                buf = heap.malloc(op[1])
                buffers.append(buf)
                model.append({})
            elif op[0] == "write":
                _, idx, offset, value = op
                if model[idx] is None:
                    with pytest.raises(SimSegfault):
                        buffers[idx].write(offset % len(buffers[idx]), value)
                    continue
                offset = offset % len(buffers[idx])
                buffers[idx].write(offset, value)
                model[idx][offset] = value
            elif op[0] == "read":
                _, idx, offset = op
                if model[idx] is None:
                    with pytest.raises(SimSegfault):
                        buffers[idx].read(offset % len(buffers[idx]))
                    continue
                offset = offset % len(buffers[idx])
                if offset in model[idx]:
                    assert buffers[idx].read(offset) == model[idx][offset]
            else:
                _, idx = op
                if model[idx] is None:
                    continue  # double free would raise; skip in model test
                heap.free(buffers[idx])
                model[idx] = None

        assert heap.metadata_intact()

    @settings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 12), min_size=2, max_size=8),
        victim=st.integers(0, 7),
        seed=st.integers(0, 500),
    )
    def test_oob_writes_never_touch_nonadjacent_data(self, sizes, victim, seed):
        """A one-cell overrun can only affect the very next region, never
        buffers further away."""
        heap = SimHeap(seed=seed)
        bufs = [heap.malloc(n) for n in sizes]
        for k, buf in enumerate(bufs):
            for i in range(len(buf)):
                buf.write(i, k * 100 + i)
        victim = victim % (len(bufs) - 1)
        try:
            bufs[victim].write(len(bufs[victim]), -1)  # one past the end
        except SimSegfault:
            return
        # Buffers other than the immediate successor are untouched.
        for k, buf in enumerate(bufs):
            if k in (victim, victim + 1):
                continue
            assert buf.to_list() == [k * 100 + i for i in range(len(buf))]
