"""Tests for the EXIF subject and its three seeded bugs."""

import random

import pytest

from repro.simmem.errors import SimSegfault
from repro.subjects import base
from repro.subjects.exif import ExifSubject, program
from repro.subjects.exif.subject import BUF_SIZE, generate_job


def _job(**overrides):
    job = {
        "heap_seed": 1,
        "ifds": [
            {
                "entries": [
                    {"tag": 0x100, "format": 3, "components": 4, "values": [1, 2, 3, 4]}
                ]
            }
        ],
        "thumbnail": None,
        "maker_note": None,
        "buf_size": BUF_SIZE,
    }
    job.update(overrides)
    return job


def _run(job):
    base.begin_truth_capture()
    try:
        out = program.main(job)
        crashed = False
    except Exception:
        out = None
        crashed = True
    return out, crashed, base.end_truth_capture()


class TestCleanParsing:
    def test_entry_counts_and_sizes(self):
        out, crashed, bugs = _run(_job())
        assert not crashed and not bugs
        n_entries, maxlen, thumb_len, mnote_len = out
        assert n_entries == 1
        assert maxlen == 8 + (8 % 4)  # format 3 = 2 bytes * 4 components

    def test_valid_thumbnail(self):
        thumb = {"data": [9] * 32, "declared_len": 16}
        out, crashed, bugs = _run(_job(thumbnail=thumb))
        assert not crashed and not bugs
        assert out[2] == 16

    def test_valid_maker_note_roundtrip(self):
        note = {"count": 2, "offsets": [0, 50], "sizes": [8, 8]}
        out, crashed, bugs = _run(_job(maker_note=note))
        assert not crashed and not bugs
        assert out[3] == 16


class TestExif1:
    def test_negative_index_recorded(self):
        thumb = {"data": [1] * 20, "declared_len": 60}
        _, _, bugs = _run(_job(thumbnail=thumb))
        assert "exif1" in bugs

    def test_crash_depends_on_layout(self):
        outcomes = set()
        for seed in range(40):
            thumb = {"data": [1] * 20, "declared_len": 90}
            _, crashed, bugs = _run(_job(heap_seed=seed, thumbnail=thumb))
            if "exif1" in bugs:
                outcomes.add(crashed)
        assert True in outcomes  # it does crash under some layouts


class TestExif2:
    def _huge(self):
        return {
            "tag": 0x8769,
            "format": 5,  # 8 bytes per component
            "components": 300,
            "values": [7] * 48,
        }

    def test_workspace_overrun_recorded(self):
        job = _job(ifds=[{"entries": [self._huge()]}])
        _, _, bugs = _run(job)
        assert "exif2" in bugs

    def test_small_entries_never_trigger(self):
        job = _job()
        _, _, bugs = _run(job)
        assert "exif2" not in bugs


class TestExif3:
    def test_paper_worked_example(self):
        """o + s > buf_size leaves an entry uninitialised in the load
        phase; the save phase memcpy then segfaults."""
        note = {"count": 2, "offsets": [0, BUF_SIZE], "sizes": [8, 8]}
        base.begin_truth_capture()
        with pytest.raises(SimSegfault):
            program.main(_job(maker_note=note))
        assert "exif3" in base.end_truth_capture()

    def test_crash_is_in_save_not_load(self):
        import traceback

        note = {"count": 1, "offsets": [BUF_SIZE], "sizes": [16]}
        base.begin_truth_capture()
        try:
            program.main(_job(maker_note=note))
            pytest.fail("expected a crash")
        except SimSegfault:
            tb = traceback.format_exc()
        finally:
            base.end_truth_capture()
        assert "mnote_canon_save" in tb
        assert "memcpy" in tb

    def test_valid_offsets_never_trigger(self):
        note = {"count": 3, "offsets": [0, 20, 40], "sizes": [10, 10, 10]}
        _, crashed, bugs = _run(_job(maker_note=note))
        assert not crashed and "exif3" not in bugs


class TestGenerator:
    def test_rates_are_ordered_like_the_paper(self):
        """exif3 must be the rarest bug (the paper: 21 failing runs for
        bug #3 vs thousands of total runs)."""
        rng = random.Random(23)
        counts = {"exif1": 0, "exif2": 0, "exif3": 0}
        for _ in range(3000):
            job = generate_job(rng)
            base.begin_truth_capture()
            try:
                program.main(job)
            except Exception:
                pass
            for b in base.end_truth_capture():
                counts[b] += 1
        assert counts["exif3"] > 0
        assert counts["exif3"] < counts["exif2"]
        assert counts["exif3"] < counts["exif1"]

    def test_subject_protocol(self):
        subject = ExifSubject()
        assert subject.bug_ids == ("exif1", "exif2", "exif3")
        rng = random.Random(1)
        job = subject.generate_input(rng)
        assert "ifds" in job
