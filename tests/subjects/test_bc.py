"""Tests for the BC subject: parser, evaluator, and the growth overrun."""

import random

import pytest

from repro.subjects import base
from repro.subjects.bc import BcSubject, program
from repro.subjects.bc.subject import generate_job, reference_output


def _run(statements, heap_seed=1):
    job = {"heap_seed": heap_seed, "statements": statements}
    base.begin_truth_capture()
    try:
        out = program.main(job)
        crashed = False
    except Exception:
        out = None
        crashed = True
    return out, crashed, base.end_truth_capture()


class TestTokenizer:
    def test_numbers_names_operators(self):
        toks = program.tokenize("x1 = 42 + foo[3]")
        kinds = [t[0] for t in toks]
        assert kinds == ["name", "=", "num", "+", "name", "[", "num", "]", "end"]

    def test_bad_character_rejected(self):
        with pytest.raises(ValueError):
            program.tokenize("x = 1 $ 2")


class TestParserEvaluator:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("print 2 + 3 * 4", 14),
            ("print (2 + 3) * 4", 20),
            ("print 10 - 2 - 3", 5),  # left associative
            ("print 17 % 5", 2),
            ("print 17 / 5", 3),  # integer division
            ("print 7 / 0", 0),  # guarded division
            ("print -3 + 5", 2),
        ],
    )
    def test_arithmetic(self, text, expected):
        out, crashed, _ = _run([text])
        assert not crashed
        assert out == [expected]

    def test_variables_and_arrays(self):
        out, crashed, _ = _run(
            ["x = 5", "a[2] = x * 3", "print a[2] + x", "print a[9]"]
        )
        assert not crashed
        assert out == [20, 0]

    def test_undefined_variable_reads_zero(self):
        out, _, _ = _run(["print nosuch + 1"])
        assert out == [1]

    def test_parse_error_on_malformed_statement(self):
        _, crashed, _ = _run(["x = = 3"])
        assert crashed  # ValueError from the parser

    def test_matches_reference_on_random_programs(self):
        rng = random.Random(13)
        checked = 0
        for _ in range(40):
            job = generate_job(rng)
            base.begin_truth_capture()
            try:
                out = program.main(job)
            except Exception:
                assert "bc1" in base.end_truth_capture()
                continue
            bugs = base.end_truth_capture()
            if not bugs:
                assert out == reference_output(job)
                checked += 1
        assert checked > 5


class TestBugTrigger:
    def _many_vars_then_arrays(self, n_vars, n_arrays):
        stmts = [f"v{i} = {i}" for i in range(n_vars)]
        stmts += [f"a{k}[0] = {k}" for k in range(n_arrays)]
        stmts += ["print v0"]
        return stmts

    def test_bc1_triggers_with_many_scalars(self):
        # Third array triggers growth to capacity 6; 10 scalars overrun.
        _, _, bugs = _run(self._many_vars_then_arrays(10, 3))
        assert "bc1" in bugs

    def test_bc1_not_triggered_with_few_scalars(self):
        _, crashed, bugs = _run(self._many_vars_then_arrays(4, 3))
        assert "bc1" not in bugs
        assert not crashed

    def test_bc1_crash_is_nondeterministic_in_layout(self):
        """The same overrun crashes under some heap layouts and not
        others -- the paper's non-deterministic bug behaviour."""
        outcomes = set()
        for seed in range(30):
            _, crashed, bugs = _run(
                self._many_vars_then_arrays(9, 3), heap_seed=seed
            )
            if "bc1" in bugs:
                outcomes.add(crashed)
        assert outcomes == {True, False}

    def test_bc1_crash_is_after_the_overrun(self):
        """When it crashes, the exception surfaces at a later allocation,
        not inside more_arrays (no useful stack, Section 4.2.2)."""
        import traceback

        for seed in range(40):
            job = {
                "heap_seed": seed,
                "statements": self._many_vars_then_arrays(12, 3),
            }
            base.begin_truth_capture()
            try:
                program.main(job)
            except Exception:
                tb = traceback.format_exc()
                base.end_truth_capture()
                assert "more_arrays" not in tb.splitlines()[-1]
                return
            base.end_truth_capture()
        pytest.fail("expected at least one crash across layouts")


class TestSubjectProtocol:
    def test_generate_inputs_are_well_formed(self):
        subject = BcSubject()
        rng = random.Random(17)
        for _ in range(10):
            job = subject.generate_input(rng)
            assert job["statements"]
            for stmt in job["statements"]:
                program.tokenize(stmt)  # must lex cleanly
