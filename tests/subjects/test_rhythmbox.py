"""Tests for the RHYTHMBOX subject: the event loop and its two races."""

import random

import pytest

from repro.simmem.errors import SimSegfault
from repro.subjects import base
from repro.subjects.rhythmbox import RhythmboxSubject, program
from repro.subjects.rhythmbox.subject import generate_job


def _run(script, heap_seed=1):
    job = {"heap_seed": heap_seed, "script": script}
    base.begin_truth_capture()
    try:
        out = program.main(job)
        crashed = False
    except Exception:
        out = None
        crashed = True
    return out, crashed, base.end_truth_capture()


class TestEventLoop:
    def test_quiet_session_is_clean(self):
        script = [(0, "add_view", 0), (5, "db_update", 3), (50, "quit", 0)]
        out, crashed, bugs = _run(script)
        assert not crashed and not bugs

    def test_events_processed_in_time_order(self):
        script = [(30, "db_update", 2), (10, "db_update", 1), (60, "quit", 0)]
        out, crashed, _ = _run(script)
        assert not crashed
        assert out[1] == 2  # both signals emitted

    def test_playback_ticks_accumulate(self):
        script = [(0, "play", 1), (47, "stop", 0)]
        out, crashed, bugs = _run(script)
        assert not crashed and not bugs
        # ticks at 5,10,...,45 => 9 ticks processed before the stop
        assert out[0] > 9

    def test_pause_and_volume_do_not_crash(self):
        script = [
            (0, "play", 1),
            (7, "pause", 0),
            (8, "volume", 130),
            (9, "play", 2),
            (60, "quit", 0),
        ]
        out, crashed, bugs = _run(script)
        assert not crashed


class TestRb1TimerRace:
    def test_tick_landing_after_finalize_crashes(self):
        """play at 0 ticks at 5,10,...; quit at 11 finalises at 14; the
        tick at 15 dereferences the freed priv record."""
        script = [(0, "play", 1), (11, "quit", 0)]
        base.begin_truth_capture()
        with pytest.raises(SimSegfault):
            program.main({"heap_seed": 1, "script": script})
        assert "rb1" in base.end_truth_capture()

    def test_tick_landing_inside_gap_is_harmless(self):
        """quit at 13 finalises at 16; the pending tick at 15 lands in
        the gap, early-outs on the cleared flag, and nothing crashes."""
        script = [(0, "play", 1), (13, "quit", 0)]
        out, crashed, bugs = _run(script)
        assert not crashed
        assert "rb1" not in bugs

    def test_stopped_player_quit_is_safe(self):
        script = [(0, "play", 1), (7, "stop", 0), (30, "quit", 0)]
        out, crashed, bugs = _run(script)
        assert not crashed and "rb1" not in bugs


class TestRb2SignalRace:
    def test_remove_during_queued_signal_then_update_crashes(self):
        """db_update at 10 queues the view's signal (drain at 12);
        removing the view at 11 takes the buggy path; the update at 20
        walks into freed memory."""
        script = [
            (0, "add_view", 0),
            (10, "db_update", 1),
            (11, "remove_view", 0),
            (20, "db_update", 1),
        ]
        base.begin_truth_capture()
        with pytest.raises(SimSegfault):
            program.main({"heap_seed": 1, "script": script})
        assert "rb2" in base.end_truth_capture()

    def test_remove_after_drain_is_safe(self):
        script = [
            (0, "add_view", 0),
            (10, "db_update", 1),
            (15, "remove_view", 0),  # drain happened at 12
            (20, "db_update", 1),
        ]
        out, crashed, bugs = _run(script)
        assert not crashed and "rb2" not in bugs

    def test_rb2_without_subsequent_update_does_not_crash(self):
        """The unsafe disposal happened, but nothing walked the handler
        list afterwards: bug occurred, run succeeded."""
        script = [
            (0, "add_view", 0),
            (10, "db_update", 1),
            (11, "remove_view", 0),
        ]
        out, crashed, bugs = _run(script)
        assert not crashed
        assert "rb2" in bugs


class TestGenerator:
    def test_sessions_terminate(self):
        rng = random.Random(31)
        for _ in range(100):
            job = generate_job(rng)
            base.begin_truth_capture()
            try:
                out = program.main(job)
                assert out[0] < 10000  # the loop guard never saturates
            except Exception:
                pass
            base.end_truth_capture()

    def test_both_bugs_reachable_from_generator(self):
        rng = random.Random(37)
        seen = set()
        for _ in range(1500):
            job = generate_job(rng)
            base.begin_truth_capture()
            try:
                program.main(job)
            except Exception:
                pass
            seen.update(base.end_truth_capture())
            if seen == {"rb1", "rb2"}:
                break
        assert seen == {"rb1", "rb2"}

    def test_subject_protocol(self):
        subject = RhythmboxSubject()
        assert subject.bug_ids == ("rb1", "rb2")
