"""Tests for the CCRYPT subject."""

import random

import pytest

from repro.simmem.errors import SimSegfault
from repro.subjects import base
from repro.subjects.ccrypt import CcryptSubject, program
from repro.subjects.ccrypt.subject import generate_job, reference_output


def _job(**overrides):
    job = {
        "heap_seed": 1,
        "mode": "encrypt",
        "key": [1, 2, 3],
        "data": list(range(40)),
        "output_exists": False,
        "force": False,
        "stdin_lines": [],
    }
    job.update(overrides)
    return job


def _run(job):
    base.begin_truth_capture()
    try:
        out = program.main(job)
        crashed = False
    except Exception:
        out = None
        crashed = True
    return out, crashed, base.end_truth_capture()


class TestCipher:
    def test_encrypt_decrypt_roundtrip(self):
        data = [random.Random(0).randint(0, 255) for _ in range(64)]
        enc, _, _ = _run(_job(data=data))
        assert enc[0] is True
        dec, _, _ = _run(_job(mode="decrypt", data=enc[1]))
        assert dec[1] == data

    def test_key_changes_ciphertext(self):
        a, _, _ = _run(_job(key=[1]))
        b, _, _ = _run(_job(key=[2]))
        assert a[1] != b[1]

    def test_matches_reference(self):
        rng = random.Random(5)
        for _ in range(30):
            job = generate_job(rng)
            out, crashed, bugs = _run(job)
            if crashed:
                assert "ccrypt1" in bugs
                continue
            assert out == reference_output(job)


class TestPromptPaths:
    def test_force_skips_prompt(self):
        out, crashed, bugs = _run(_job(output_exists=True, force=True))
        assert not crashed and not bugs
        assert out[0] is True

    def test_yes_answer_proceeds(self):
        out, crashed, bugs = _run(
            _job(output_exists=True, stdin_lines=[[ord("y"), 10]])
        )
        assert not crashed
        assert out[0] is True

    def test_no_answer_declines(self):
        out, crashed, _ = _run(
            _job(output_exists=True, stdin_lines=[[ord("N"), 10]])
        )
        assert out == (False, [], 0)

    def test_garbage_answers_consume_lines(self):
        out, crashed, _ = _run(
            _job(
                output_exists=True,
                stdin_lines=[[ord("?"), 10], [ord("x"), 10], [ord("y"), 10]],
            )
        )
        assert not crashed
        assert out[0] is True


class TestBugTrigger:
    def test_ccrypt1_eof_dereference(self):
        base.begin_truth_capture()
        with pytest.raises(SimSegfault):
            program.main(_job(output_exists=True, stdin_lines=[]))
        assert "ccrypt1" in base.end_truth_capture()

    def test_ccrypt1_after_garbage_exhausts_stdin(self):
        base.begin_truth_capture()
        with pytest.raises(SimSegfault):
            program.main(
                _job(output_exists=True, stdin_lines=[[ord("?"), 10]])
            )
        assert "ccrypt1" in base.end_truth_capture()

    def test_reference_says_eof_declines(self):
        job = _job(output_exists=True, stdin_lines=[])
        assert reference_output(job) == (False, [], 0)

    def test_bug_is_deterministic(self):
        """Failure(P) = 1.0 territory: the crash happens every time."""
        for seed in range(5):
            job = _job(heap_seed=seed, output_exists=True, stdin_lines=[])
            _, crashed, bugs = _run(job)
            assert crashed and bugs == ["ccrypt1"]


class TestSubjectProtocol:
    def test_subject_metadata(self):
        subject = CcryptSubject()
        assert subject.bug_ids == ("ccrypt1",)
        assert "def main" in subject.source()
