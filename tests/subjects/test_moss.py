"""Tests for the MOSS subject: algorithm correctness and bug triggers."""

import random

import pytest

from repro.subjects import base
from repro.subjects.moss import MossSubject, program, reference
from repro.subjects.moss.generator import generate_job


def _clean_job(files, match_comment=False, kgram=3, window=4, gap=4):
    return {
        "heap_seed": 7,
        "oom_rate": 0.0,
        "config": {
            "kgram": kgram,
            "window": window,
            "gap": gap,
            "match_comment": match_comment,
        },
        "files": files,
    }


def _file(tokens, language=2):
    return {"language": language, "tokens": list(tokens)}


def _run(job):
    base.begin_truth_capture()
    try:
        out = program.main(job)
        crashed = False
    except Exception:
        out = None
        crashed = True
    bugs = base.end_truth_capture()
    return out, crashed, bugs


class TestAlgorithm:
    def test_identical_files_fully_match(self):
        tokens = [random.Random(1).randint(1, 200) for _ in range(60)]
        job = _clean_job([_file(tokens), _file(tokens)])
        out, crashed, bugs = _run(job)
        assert not crashed and not bugs
        assert len(out) == 1
        i, j, score, passages = out[0]
        assert (i, j) == (0, 1)
        assert score > 0 and passages >= 1

    def test_disjoint_files_do_not_match(self):
        rng = random.Random(2)
        f1 = _file([rng.randint(1, 100) for _ in range(50)])
        f2 = _file([rng.randint(101, 200) for _ in range(50)])
        out, crashed, bugs = _run(_clean_job([f1, f2]))
        assert not crashed
        # Hash collisions can create tiny incidental scores; a genuine
        # match would share many fingerprints.
        assert all(score <= 3 for (_i, _j, score, _p) in out)

    def test_program_matches_reference_on_clean_inputs(self):
        rng = random.Random(3)
        for _ in range(25):
            nfiles = rng.randint(2, 4)
            shared = [rng.randint(1, 200) for _ in range(40)]
            files = []
            shared_budget = 2  # keep the passage table comfortably small
            for _ in range(nfiles):
                toks = [rng.randint(1, 200) for _ in range(rng.randint(30, 90))]
                if shared_budget > 0 and rng.random() < 0.6:
                    shared_budget -= 1
                    pos = rng.randint(0, len(toks))
                    toks = toks[:pos] + shared + toks[pos:]
                files.append(_file(toks))
            job = _clean_job(files, kgram=rng.randint(3, 5), window=rng.randint(4, 8))
            out, crashed, bugs = _run(job)
            assert not crashed, "clean inputs must never crash"
            assert not bugs
            assert out == reference.reference_output(job)

    def test_winnow_density_guarantee(self):
        """Winnowing selects at least one fingerprint per window."""
        rng = random.Random(4)
        hashes = [rng.randint(0, 2047) for _ in range(100)]
        fps = reference.winnow(hashes, 5)
        positions = [p for p, _h in fps]
        for i in range(len(hashes) - 5 + 1):
            assert any(i <= p < i + 5 for p in positions)

    def test_winnow_matches_buggy_implementation(self):
        rng = random.Random(5)
        hashes = [rng.randint(0, 2047) for _ in range(80)]

        class FakeBuf:
            def read(self, i):
                return tokens[i]

        tokens = [rng.randint(1, 200) for _ in range(60)]
        assert reference.kgram_hashes(tokens, 4) == program.kgram_hashes(
            FakeBuf(), len(tokens), 4
        )
        assert reference.winnow(hashes, 6) == program.winnow(hashes, 6)


class TestBugTriggers:
    def test_moss1_token_overrun(self):
        big = _file([1] * (program.TOKEN_CAP + 40))
        _, _, bugs = _run(_clean_job([big, _file([2] * 30)]))
        assert "moss1" in bugs

    def test_moss2_missing_oom_check(self):
        # Long shared passage (detail record) + certain OOM injection.
        shared = list(range(1, 120))
        job = _clean_job([_file(shared * 2), _file(shared * 2)])
        job["oom_rate"] = 1.0
        out, crashed, bugs = _run(job)
        assert "moss2" in bugs
        assert crashed  # NULL detail pointer is dereferenced

    def test_moss3_passage_overrun(self):
        rng = random.Random(6)
        files = []
        shared = [[rng.randint(1, 200) for _ in range(30)] for _ in range(30)]
        for k in range(10):
            toks = [rng.randint(1, 200) for _ in range(40)]
            for s in shared[k * 3 : k * 3 + 3]:
                toks += s
            files.append(_file(toks))
        # every file also shares a block with the next one
        for k in range(9):
            extra = [rng.randint(1, 200) for _ in range(35)]
            files[k]["tokens"] += extra
            files[k + 1]["tokens"] += extra
        _, _, bugs = _run(_clean_job(files))
        assert "moss3" in bugs or "moss6" in bugs  # heavy sharing regime

    def test_moss4_file_table_overrun(self):
        files = [_file([i] * 30) for i in range(program.FILE_CAP + 3)]
        _, _, bugs = _run(_clean_job(files))
        assert "moss4" in bugs

    def test_moss5_null_language_handler(self):
        job = _clean_job([_file([1] * 30, language=18)])
        out, crashed, bugs = _run(job)
        assert "moss5" in bugs
        assert crashed

    def test_moss6_head_removal_dangling_bucket(self):
        rng = random.Random(8)
        boiler = [rng.randint(1, 200) for _ in range(20)]
        files = []
        for _ in range(9):
            toks = [rng.randint(1, 200) for _ in range(50)] + boiler
            files.append(_file(toks))
        _, _, bugs = _run(_clean_job(files))
        assert "moss6" in bugs

    def test_moss7_harmless_stats_overrun(self):
        toks = [1, 2, 3, 4, 5] * 60  # 300 tokens/file
        job = _clean_job([_file(toks), _file(toks)])
        out, crashed, bugs = _run(job)
        assert "moss7" in bugs
        assert not crashed  # never independently causes a failure

    def test_moss8_never_triggered_by_generator(self):
        rng = random.Random(9)
        for _ in range(60):
            job = generate_job(rng)
            for f in job["files"]:
                assert max(f["tokens"], default=0) <= 1000000

    def test_moss9_consecutive_comments_wrong_output(self):
        toks = [10, -5, -6, 11, 12, 13, 14, 15, 16, 17, 18] * 6
        job = _clean_job([_file(toks), _file(toks)], match_comment=True)
        out, crashed, bugs = _run(job)
        assert "moss9" in bugs
        assert not crashed
        assert out != reference.reference_output(job)


class TestSubjectProtocol:
    def test_oracle_differential(self):
        subject = MossSubject()
        rng = random.Random(11)
        job = subject.generate_input(rng)
        try:
            out = program.main(job)
        except Exception:
            return  # crashing runs never reach the oracle
        assert subject.oracle(job, out) == (out == reference.reference_output(job))

    def test_source_is_instrumentable(self):
        from repro.instrument.tracer import instrument_source

        subject = MossSubject()
        prog = instrument_source(subject.source(), "moss-test")
        assert prog.table.n_predicates > 1000
