"""Shared fixtures: small cached experiments for integration-level tests.

Experiments are expensive (they execute thousands of instrumented runs),
so each subject's small experiment is computed once per session and
shared by every test that needs it.
"""

from __future__ import annotations

import os
import random

import pytest


def pytest_collection_modifyitems(config, items):
    """Optional order shuffling for environments without pytest-randomly.

    CI runs the tier-1 lane under pytest-randomly with a per-commit
    seed; setting ``REPRO_TEST_SHUFFLE=<seed>`` reproduces that pressure
    anywhere (tests must not depend on collection order or on state
    leaked by an earlier test).  No-op when the variable is unset or a
    real pytest-randomly plugin is active.
    """
    seed = os.environ.get("REPRO_TEST_SHUFFLE")
    if not seed or config.pluginmanager.hasplugin("randomly"):
        return
    random.Random(int(seed)).shuffle(items)

from repro.core.elimination import DiscardStrategy
from repro.harness.experiment import Experiment, run_experiment
from repro.subjects.bc import BcSubject
from repro.subjects.ccrypt import CcryptSubject
from repro.subjects.exif import ExifSubject
from repro.subjects.moss import MossSubject
from repro.subjects.rhythmbox import RhythmboxSubject


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Leave every test with observability off.

    Tests that configure ``repro.obs`` must not leak an enabled registry
    into unrelated tests -- the subsystem is process-global by design.
    """
    from repro import obs

    yield
    obs.shutdown()


# ----------------------------------------------------------------------
# Shared store builders (used by the store, integration and federate
# suites -- one definition instead of one copy per test module).
# ----------------------------------------------------------------------
def build_synthetic_store(
    directory,
    k=3,
    n_runs=24,
    n_preds=4,
    seed=0,
    seed_start=0,
    format_version=None,
):
    """A store of ``k`` seeded shards plus the monolithic population.

    Shards carry contiguous seed ranges starting at ``seed_start``, so
    federation suites can build seed-disjoint fleets by varying it.
    """
    from repro.instrument.sampling import SamplingPlan
    from repro.store import ShardStore

    from tests.helpers import make_population, split_reports

    whole = make_population(n_preds=n_preds, n_runs=n_runs, seed=seed)
    store = ShardStore.create(
        str(directory),
        "synthetic",
        whole.table,
        SamplingPlan.full(),
        format_version=format_version,
    )
    offset = seed_start
    for part in split_reports(whole, k):
        store.append_shard(part, seed_start=offset)
        offset += part.n_runs
    return store, whole


def collect_tiny_store(
    directory,
    n_runs=120,
    chunk_size=30,
    seed=0,
    jobs=2,
    rate=0.5,
    faults=(),
):
    """Collect ``n_runs`` TinySubject trials into a sharded store.

    Genuine (uniform) sampling by default, so retried chunks must
    reproduce the sampler decision stream exactly.
    """
    from repro.harness.parallel import run_trials_sharded
    from repro.instrument.sampling import SamplingPlan

    from tests.harness.test_runner import TinySubject

    plan = SamplingPlan.full() if rate is None else SamplingPlan.uniform(rate)
    return run_trials_sharded(
        TinySubject(),
        n_runs,
        plan,
        str(directory),
        seed=seed,
        jobs=jobs,
        chunk_size=chunk_size,
        backoff_base=0.01,
        faults=faults,
    )


@pytest.fixture
def store_factory(tmp_path):
    """Build named synthetic stores under this test's tmp directory.

    ``factory(name, **kwargs)`` forwards to :func:`build_synthetic_store`
    and returns ``(store, whole_population)``.
    """

    def factory(name="store", **kwargs):
        return build_synthetic_store(tmp_path / name, **kwargs)

    return factory


def _small_experiment(subject, n_runs, training_runs=60, **kwargs):
    config = Experiment(
        subject=subject,
        n_runs=n_runs,
        sampling=kwargs.pop("sampling", "adaptive"),
        training_runs=training_runs,
        seed=kwargs.pop("seed", 0),
        strategy=kwargs.pop("strategy", DiscardStrategy.DISCARD_ALL),
        max_predictors=kwargs.pop("max_predictors", 15),
        **kwargs,
    )
    return run_experiment(config)


@pytest.fixture(scope="session")
def moss_experiment():
    """A 500-run adaptive-sampling MOSS experiment (Section 4.1 scale-down)."""
    return _small_experiment(MossSubject(), 500)


@pytest.fixture(scope="session")
def ccrypt_experiment():
    """A 400-run CCRYPT experiment."""
    return _small_experiment(CcryptSubject(), 400)


@pytest.fixture(scope="session")
def bc_experiment():
    """A 400-run BC experiment."""
    return _small_experiment(BcSubject(), 400)


@pytest.fixture(scope="session")
def exif_experiment():
    """A 1200-run EXIF experiment (its bugs are rarer)."""
    return _small_experiment(ExifSubject(), 1200)


@pytest.fixture(scope="session")
def rhythmbox_experiment():
    """A 500-run RHYTHMBOX experiment."""
    return _small_experiment(RhythmboxSubject(), 500)
