"""Shared fixtures: small cached experiments for integration-level tests.

Experiments are expensive (they execute thousands of instrumented runs),
so each subject's small experiment is computed once per session and
shared by every test that needs it.
"""

from __future__ import annotations

import os
import random

import pytest


def pytest_collection_modifyitems(config, items):
    """Optional order shuffling for environments without pytest-randomly.

    CI runs the tier-1 lane under pytest-randomly with a per-commit
    seed; setting ``REPRO_TEST_SHUFFLE=<seed>`` reproduces that pressure
    anywhere (tests must not depend on collection order or on state
    leaked by an earlier test).  No-op when the variable is unset or a
    real pytest-randomly plugin is active.
    """
    seed = os.environ.get("REPRO_TEST_SHUFFLE")
    if not seed or config.pluginmanager.hasplugin("randomly"):
        return
    random.Random(int(seed)).shuffle(items)

from repro.core.elimination import DiscardStrategy
from repro.harness.experiment import Experiment, run_experiment
from repro.subjects.bc import BcSubject
from repro.subjects.ccrypt import CcryptSubject
from repro.subjects.exif import ExifSubject
from repro.subjects.moss import MossSubject
from repro.subjects.rhythmbox import RhythmboxSubject


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Leave every test with observability off.

    Tests that configure ``repro.obs`` must not leak an enabled registry
    into unrelated tests -- the subsystem is process-global by design.
    """
    from repro import obs

    yield
    obs.shutdown()


def _small_experiment(subject, n_runs, training_runs=60, **kwargs):
    config = Experiment(
        subject=subject,
        n_runs=n_runs,
        sampling=kwargs.pop("sampling", "adaptive"),
        training_runs=training_runs,
        seed=kwargs.pop("seed", 0),
        strategy=kwargs.pop("strategy", DiscardStrategy.DISCARD_ALL),
        max_predictors=kwargs.pop("max_predictors", 15),
        **kwargs,
    )
    return run_experiment(config)


@pytest.fixture(scope="session")
def moss_experiment():
    """A 500-run adaptive-sampling MOSS experiment (Section 4.1 scale-down)."""
    return _small_experiment(MossSubject(), 500)


@pytest.fixture(scope="session")
def ccrypt_experiment():
    """A 400-run CCRYPT experiment."""
    return _small_experiment(CcryptSubject(), 400)


@pytest.fixture(scope="session")
def bc_experiment():
    """A 400-run BC experiment."""
    return _small_experiment(BcSubject(), 400)


@pytest.fixture(scope="session")
def exif_experiment():
    """A 1200-run EXIF experiment (its bugs are rarer)."""
    return _small_experiment(ExifSubject(), 1200)


@pytest.fixture(scope="session")
def rhythmbox_experiment():
    """A 500-run RHYTHMBOX experiment."""
    return _small_experiment(RhythmboxSubject(), 500)
