"""Tests for the Table 8 runs-needed methodology."""

import pytest

from repro.core.runs_needed import (
    default_schedule,
    estimate_runs_for_failures,
    importance_at_n,
    runs_needed,
)

from tests.helpers import make_reports


def _interleaved_population(n=2000, bug_period=10):
    """A steady-state population: every ``bug_period``-th run fails with
    P0 true; everything else succeeds.  Importance_N converges quickly."""
    runs = []
    for i in range(n):
        if i % bug_period == 0:
            runs.append((True, {0}, None))
        else:
            runs.append((False, set(), None))
    return make_reports(1, runs)


class TestSchedule:
    def test_paper_schedule_shape(self):
        sched = default_schedule(25000)
        assert sched[0] == 100
        assert 900 in sched and 1000 in sched
        assert sched[-1] == 25000
        assert all(a < b for a, b in zip(sched, sched[1:]))

    def test_schedule_clamps_to_population(self):
        sched = default_schedule(450)
        assert sched[-1] == 450
        assert all(n <= 450 for n in sched)


class TestRunsNeeded:
    def test_converges_on_steady_population(self):
        reports = _interleaved_population()
        result = runs_needed(reports, 0)
        assert result.runs_needed is not None
        assert result.runs_needed < reports.n_runs
        assert result.failing_true_at_n >= 1
        # The curve records every schedule point.
        assert len(result.curve) == len(default_schedule(reports.n_runs))

    def test_importance_at_n_uses_prefix(self):
        reports = _interleaved_population(n=500)
        imp_100, f_100 = importance_at_n(reports, 0, 100)
        imp_full, f_full = importance_at_n(reports, 0, 500)
        assert f_100 == 10
        assert f_full == 50

    def test_rarer_bug_needs_more_runs(self):
        common = runs_needed(_interleaved_population(bug_period=5), 0)
        rare = runs_needed(_interleaved_population(bug_period=100), 0)
        assert common.runs_needed <= rare.runs_needed

    def test_custom_schedule_and_threshold(self):
        reports = _interleaved_population(n=400)
        result = runs_needed(reports, 0, threshold=0.5, schedule=[50, 400])
        assert result.runs_needed in (50, 400)
        assert result.threshold == 0.5


class TestClosingEstimate:
    def test_n_equals_f_over_p(self):
        assert estimate_runs_for_failures(20, 0.1) == 200
        assert estimate_runs_for_failures(10, 1.0) == 10

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            estimate_runs_for_failures(10, 0.0)
        with pytest.raises(ValueError):
            estimate_runs_for_failures(10, 1.5)
