"""Tests for the Table 8 runs-needed methodology."""

import pytest

from repro.core.runs_needed import (
    default_schedule,
    estimate_runs_for_failures,
    importance_at_n,
    runs_needed,
    runs_to_isolate,
)

from tests.helpers import make_reports


def _interleaved_population(n=2000, bug_period=10):
    """A steady-state population: every ``bug_period``-th run fails with
    P0 true; everything else succeeds.  Importance_N converges quickly."""
    runs = []
    for i in range(n):
        if i % bug_period == 0:
            runs.append((True, {0}, None))
        else:
            runs.append((False, set(), None))
    return make_reports(1, runs)


class TestSchedule:
    def test_paper_schedule_shape(self):
        sched = default_schedule(25000)
        assert sched[0] == 100
        assert 900 in sched and 1000 in sched
        assert sched[-1] == 25000
        assert all(a < b for a, b in zip(sched, sched[1:]))

    def test_schedule_clamps_to_population(self):
        sched = default_schedule(450)
        assert sched[-1] == 450
        assert all(n <= 450 for n in sched)


class TestRunsNeeded:
    def test_converges_on_steady_population(self):
        reports = _interleaved_population()
        result = runs_needed(reports, 0)
        assert result.runs_needed is not None
        assert result.runs_needed < reports.n_runs
        assert result.failing_true_at_n >= 1
        # The curve records every schedule point.
        assert len(result.curve) == len(default_schedule(reports.n_runs))

    def test_importance_at_n_uses_prefix(self):
        reports = _interleaved_population(n=500)
        imp_100, f_100 = importance_at_n(reports, 0, 100)
        imp_full, f_full = importance_at_n(reports, 0, 500)
        assert f_100 == 10
        assert f_full == 50

    def test_rarer_bug_needs_more_runs(self):
        common = runs_needed(_interleaved_population(bug_period=5), 0)
        rare = runs_needed(_interleaved_population(bug_period=100), 0)
        assert common.runs_needed <= rare.runs_needed

    def test_custom_schedule_and_threshold(self):
        reports = _interleaved_population(n=400)
        result = runs_needed(reports, 0, threshold=0.5, schedule=[50, 400])
        assert result.runs_needed in (50, 400)
        assert result.threshold == 0.5


class TestEdgeCases:
    """Regression pins for the runs-needed corner cases.

    These populations are hand-built so each schedule point's Importance
    gap is known; the assertions pin both the numeric answers and the
    tie rule (FIRST strict crossing, never reset by later oscillation).
    """

    def test_predictor_unobserved_in_first_step(self):
        # The first 100 runs never even observe predicate 0's site, so
        # Importance_100 is 0 with zero failing-true runs -- not an
        # error.  Convergence happens at a later schedule point.
        runs = [(False, set(), {1}) for _ in range(100)]
        runs += [
            (True, {0}, None) if i % 5 == 0 else (False, set(), None)
            for i in range(400)
        ]
        reports = make_reports(2, runs)
        assert importance_at_n(reports, 0, 100) == (0.0, 0)
        result = runs_needed(reports, 0)
        assert result.curve[0] == (100, 0.0, 0)
        assert result.runs_needed == 200

    def test_max_runs_below_first_paper_point(self):
        # Populations smaller than the paper's first schedule point (100)
        # get a single-point schedule: the full population.
        assert default_schedule(50) == [50]
        runs = [
            (True, {0}, None) if i % 5 == 0 else (False, set(), None)
            for i in range(50)
        ]
        result = runs_needed(make_reports(1, runs), 0)
        assert [n for n, _, _ in result.curve] == [50]
        # Importance_50 over the full population IS the full Importance:
        # the gap is exactly 0 < threshold, so it converges trivially.
        assert result.runs_needed == 50

    def _oscillating_population(self):
        """Importance_N oscillates around the 0.2-gap threshold.

        Phases (predicate 0 is the bug predictor, 1 is a foreign bug):
          runs   0..9    1 failing-true + 9 successes  -> imp ~ 0
          runs  10..29   20 failing-true               -> imp high
          runs  30..69   40 foreign failures           -> imp dips
          runs  70..119  50 failing-true               -> recovers
          runs 120..169  50 successes                  -> full imp
        """
        runs = [(True, {0}, None)] + [(False, set(), None)] * 9
        runs += [(True, {0}, None)] * 20
        runs += [(True, {1}, None)] * 40
        runs += [(True, {0}, None)] * 50
        runs += [(False, set(), None)] * 50
        return make_reports(2, runs)

    def test_oscillation_does_not_reset_convergence(self):
        # The gap sequence over the schedule is ~[0.50, 0.04, 0.28, 0.0]:
        # below threshold at N=30, back ABOVE at N=70, below again at the
        # end.  The tie rule says the answer is the FIRST strict
        # crossing -- 30 -- and the later excursion never resets it.
        reports = self._oscillating_population()
        result = runs_needed(reports, 0, threshold=0.2, schedule=[10, 30, 70, 170])
        gaps = [result.importance_full - imp for _, imp, _ in result.curve]
        assert gaps[0] >= 0.2          # not converged at N=10
        assert gaps[1] < 0.2           # first crossing at N=30
        assert gaps[2] >= 0.2          # oscillates back above threshold
        assert result.runs_needed == 30

    def test_gap_equal_to_threshold_does_not_converge(self):
        # The crossing is STRICT: a gap exactly equal to the threshold
        # keeps looking.  Pin it by setting the threshold to a measured
        # gap value.
        reports = self._oscillating_population()
        schedule = [10, 30, 70, 170]
        probe = runs_needed(reports, 0, threshold=0.2, schedule=schedule)
        gap_at_30 = probe.importance_full - probe.curve[1][1]
        exact = runs_needed(reports, 0, threshold=gap_at_30, schedule=schedule)
        assert exact.runs_needed != 30
        above = runs_needed(
            reports, 0, threshold=gap_at_30 * 1.001, schedule=schedule
        )
        assert above.runs_needed == 30


class TestRunsToIsolate:
    def test_max_over_predictors(self):
        # Two interleaved bugs with different rarity: the isolation cost
        # is the rarer predictor's runs_needed.
        runs = []
        for i in range(2000):
            true = set()
            if i % 10 == 0:
                true.add(0)
            if i % 100 == 0:
                true.add(1)
            runs.append((bool(true), true, None))
        reports = make_reports(2, runs)
        per_pred = [runs_needed(reports, i).runs_needed for i in (0, 1)]
        assert runs_to_isolate(reports, [0, 1]) == max(per_pred)

    def test_none_when_any_predictor_unconverged(self):
        # Predicate 1's bug only starts firing after run 150: within a
        # schedule stopping at N=100 its Importance_N is 0 while its
        # full-population importance is not, so isolation as a whole is
        # unconverged even though predicate 0 stabilised long before.
        runs = [
            (True, {0}, None) if i % 10 == 0 else (False, set(), None)
            for i in range(150)
        ]
        runs += [(True, {1}, None)] * 50
        reports = make_reports(2, runs)
        assert (
            runs_needed(reports, 0, threshold=0.2, schedule=[100]).runs_needed
            == 100
        )
        assert (
            runs_to_isolate(reports, [0, 1], threshold=1e-9, schedule=[100])
            is None
        )

    def test_empty_predictor_list(self):
        reports = _interleaved_population(n=200)
        assert runs_to_isolate(reports, []) is None


class TestClosingEstimate:
    def test_n_equals_f_over_p(self):
        assert estimate_runs_for_failures(20, 0.1) == 200
        assert estimate_runs_for_failures(10, 1.0) == 10

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            estimate_runs_for_failures(10, 0.0)
        with pytest.raises(ValueError):
            estimate_runs_for_failures(10, 1.5)
