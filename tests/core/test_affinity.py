"""Tests for affinity lists."""

import numpy as np

from repro.core.affinity import affinity_groups, affinity_list, is_sub_bug_predictor

from tests.helpers import make_reports


def _population():
    """P0 = bug predictor; P1 = redundant shadow of P0; P2 = sub-bug
    predictor (subset of P0's failures); P3 = unrelated bug."""
    runs = []
    for i in range(24):
        true = {0, 1}
        if i < 6:
            true.add(2)
        runs.append((True, true, None))
    for _ in range(8):
        runs.append((True, {3}, None))
    for _ in range(60):
        runs.append((False, set(), None))
    return make_reports(4, runs)


class TestAffinity:
    def test_shadow_tops_anchor_affinity_list(self):
        reports = _population()
        entries = affinity_list(reports, anchor=0)
        assert entries[0].predicate.name in ("P1", "P2")
        drops = {e.predicate.name: e.drop for e in entries}
        # The unrelated predictor barely moves.
        assert drops["P1"] > drops["P3"]
        assert drops["P2"] > drops["P3"]

    def test_affinity_drop_is_before_minus_after(self):
        reports = _population()
        entries = affinity_list(reports, anchor=0)
        for e in entries:
            assert e.drop == e.importance_before - e.importance_after

    def test_unrelated_predictor_survives_anchor_removal(self):
        reports = _population()
        entries = {e.predicate.name: e for e in affinity_list(reports, anchor=0)}
        assert entries["P3"].importance_after > 0

    def test_top_truncation(self):
        reports = _population()
        entries = affinity_list(reports, anchor=0, top=1)
        assert len(entries) == 1

    def test_candidate_mask(self):
        reports = _population()
        mask = np.array([True, False, True, True])
        names = [e.predicate.name for e in affinity_list(reports, anchor=0, candidates=mask)]
        assert "P1" not in names

    def test_affinity_groups_cluster_same_bug_predicates(self):
        """The shadow (P1) and sub-bug (P2) predicates group with their
        bug's predictor (P0); the unrelated bug's predictor (P3) stays
        in its own group."""
        reports = _population()
        groups = affinity_groups(reports, [0, 1, 2, 3])
        by_member = {m: tuple(g) for g in groups for m in g}
        assert by_member[0] == by_member[1]  # shadow joins P0
        assert by_member[2] == by_member[0]  # sub-bug joins P0
        assert by_member[3] != by_member[0]  # unrelated stays apart
        assert len(groups) == 2

    def test_affinity_groups_singletons_without_relations(self):
        runs = [(True, {0}, None)] * 10 + [(True, {1}, None)] * 10
        runs += [(False, set(), None)] * 30
        reports = make_reports(2, runs)
        groups = affinity_groups(reports, [0, 1])
        assert sorted(groups) == [[0], [1]]

    def test_sub_bug_detection_matches_ccrypt_heuristic(self):
        """The CCRYPT/BC case studies: the second selected predicate is a
        sub-bug predictor when the first tops its affinity list."""
        reports = _population()
        assert is_sub_bug_predictor(reports, candidate=2, anchor=0)
        assert not is_sub_bug_predictor(reports, candidate=3, anchor=0)
