"""Differential suite: ``analyze --jobs N`` is bit-identical to serial.

The engine's contract (``repro/core/engine.py``) is that worker count,
shard layout and discard strategy never change a single output bit:

* sufficient statistics -- integer equality across shard layouts
  {1, 3, 7} and ``--jobs`` {1, 2, 4}, for all five subjects;
* scores, p-values, pruning -- *bitwise* float equality (``tobytes``,
  not ``allclose``) against the serial streaming path;
* elimination rankings -- identical predictor sequences, importances and
  populations under every discard strategy, with Importance ties
  resolving in predicate-index order at every worker count;
* the CLI -- byte-identical stdout for ``--jobs 1`` vs ``--jobs 4``.

These tests are the enforcement arm of the determinism contract
documented in ``docs/ALGORITHM.md``; weakening any equality here to a
tolerance is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.engine import AnalysisEngine, concat_scores, partition_bounds
from repro.core.elimination import DiscardStrategy, eliminate
from repro.core.scores import compute_scores
from repro.core.truth import bugs_covered
from repro.instrument.sampling import SamplingPlan
from repro.store import ShardStore
from repro.store.incremental import SufficientStats

from tests.helpers import make_reports

#: Session-scoped experiment fixtures covering all five paper subjects.
SUBJECT_FIXTURES = [
    "moss_experiment",
    "ccrypt_experiment",
    "bc_experiment",
    "exif_experiment",
    "rhythmbox_experiment",
]

SHARD_LAYOUTS = (1, 3, 7)
JOB_COUNTS = (1, 2, 4)

#: Per-predicate float arrays of PredicateScores, all compared bitwise.
_SCORE_FIELDS = (
    "F",
    "S",
    "F_obs",
    "S_obs",
    "failure",
    "context",
    "increase",
    "increase_se",
    "increase_lo",
    "increase_hi",
    "pf",
    "ps",
    "z",
    "z_defined",
    "defined",
)


def _build_store(directory, experiment, n_shards):
    """Shard an experiment's population into ``n_shards`` contiguous parts."""
    reports, truth = experiment.reports, experiment.truth
    store = ShardStore.create(
        str(directory), "differential", reports.table, SamplingPlan.full()
    )
    for lo, hi in partition_bounds(reports.n_runs, n_shards):
        mask = np.zeros(reports.n_runs, dtype=bool)
        mask[lo:hi] = True
        store.append_shard(
            reports.subset(mask), truth=truth.subset(mask), seed_start=lo
        )
    return ShardStore.open(store.directory)


@pytest.fixture(scope="module")
def sharded_stores(tmp_path_factory):
    """Lazy per-subject cache of stores at every shard layout."""
    cache = {}

    def get(request, fixture_name):
        if fixture_name not in cache:
            experiment = request.getfixturevalue(fixture_name)
            base = tmp_path_factory.mktemp(fixture_name)
            cache[fixture_name] = {
                k: _build_store(base / f"shards-{k}", experiment, k)
                for k in SHARD_LAYOUTS
            }
        return cache[fixture_name]

    return get


def _assert_scores_bitwise_equal(got, want):
    for field in _SCORE_FIELDS:
        assert getattr(got, field).tobytes() == getattr(want, field).tobytes(), field
    assert got.num_failing == want.num_failing
    assert got.num_successful == want.num_successful


def _assert_stats_equal(got, want):
    for field in ("F", "S", "F_obs", "S_obs"):
        np.testing.assert_array_equal(getattr(got, field), getattr(want, field))
    assert got.num_failing == want.num_failing
    assert got.num_successful == want.num_successful


@pytest.mark.parametrize("subject_fixture", SUBJECT_FIXTURES)
class TestScoresBitIdentical:
    def test_stats_scores_and_pruning(self, request, sharded_stores, subject_fixture):
        """Full layout x jobs matrix: statistics, scores, p-values and
        pruned sets match the serial stream bit for bit."""
        stores = sharded_stores(request, subject_fixture)
        reference = stores[SHARD_LAYOUTS[0]].sufficient_stats()
        ref_scores = reference.to_scores()
        for layout, store in stores.items():
            serial = store.sufficient_stats()
            _assert_stats_equal(serial, reference)
            for jobs in JOB_COUNTS:
                engine = AnalysisEngine(jobs=jobs)
                stats = engine.store_stats(store)
                _assert_stats_equal(stats, serial)
                scoring = engine.score_stats(stats)
                _assert_scores_bitwise_equal(scoring.scores, ref_scores)
                np.testing.assert_array_equal(
                    scoring.pruning.kept,
                    AnalysisEngine(jobs=1).score_stats(serial).pruning.kept,
                )

    def test_pvalues_bitwise(self, request, sharded_stores, subject_fixture):
        """The z-test p-values survive predicate partitioning bitwise."""
        from repro.core.scores import z_test_pvalues

        store = sharded_stores(request, subject_fixture)[3]
        stats = store.sufficient_stats()
        serial = z_test_pvalues(stats.to_scores())
        for jobs in JOB_COUNTS:
            scoring = AnalysisEngine(jobs=jobs).score_stats(stats)
            assert scoring.pvalues.tobytes() == serial.tobytes()


@pytest.mark.parametrize("subject_fixture", SUBJECT_FIXTURES)
@pytest.mark.parametrize("strategy", list(DiscardStrategy))
class TestEliminationBitIdentical:
    def test_rankings_match_serial(
        self, request, sharded_stores, subject_fixture, strategy
    ):
        """End-to-end analyze at every worker count reproduces the serial
        elimination ranking exactly -- order, importances, populations."""
        store = sharded_stores(request, subject_fixture)[3]
        reports, _ = store.load_merged()
        scores = compute_scores(reports)
        serial_pruning = AnalysisEngine(jobs=1).score_stats(
            SufficientStats.from_reports(reports)
        ).pruning
        reference = eliminate(
            reports,
            candidates=serial_pruning.kept,
            strategy=strategy,
            max_predictors=6,
        )
        assert scores.n_predicates == reports.n_predicates
        for jobs in JOB_COUNTS:
            analysis = AnalysisEngine(jobs=jobs).analyze_store(
                store, strategy=strategy, max_predictors=6
            )
            got = analysis.elimination
            assert [s.predicate.index for s in got.selected] == [
                s.predicate.index for s in reference.selected
            ]
            for g, r in zip(got.selected, reference.selected):
                assert g.rank == r.rank
                assert g.predicate.index == r.predicate.index
                for phase in ("initial", "effective"):
                    gs, rs = getattr(g, phase), getattr(r, phase)
                    assert gs.importance == rs.importance
                    assert gs.importance_lo == rs.importance_lo
                    assert gs.importance_hi == rs.importance_hi
                    assert gs.num_failing == rs.num_failing
                assert g.runs_discarded == r.runs_discarded
                assert g.failing_runs_covered == r.failing_runs_covered
            assert got.iterations == reference.iterations
            assert got.remaining_failing == reference.remaining_failing


class TestCliStdoutIdentical:
    def test_jobs_flag_does_not_change_output(
        self, request, sharded_stores, capsys
    ):
        """``analyze --jobs 4`` prints byte-identical stdout to serial."""
        store = sharded_stores(request, "ccrypt_experiment")[7]
        outputs = {}
        for jobs in (1, 4):
            code = cli_main(
                ["analyze", store.directory, "--jobs", str(jobs), "--no-audit"]
            )
            assert code == 0
            outputs[jobs] = capsys.readouterr().out
        assert outputs[1] == outputs[4]

    def test_stats_only_identical(self, request, sharded_stores, capsys):
        store = sharded_stores(request, "bc_experiment")[3]
        outputs = {}
        for jobs in (1, 4):
            code = cli_main(
                [
                    "analyze",
                    store.directory,
                    "--jobs",
                    str(jobs),
                    "--stats-only",
                    "--no-audit",
                ]
            )
            assert code == 0
            outputs[jobs] = capsys.readouterr().out
        assert outputs[1] == outputs[4]


class TestTieDeterminism:
    """Importance ties resolve by predicate index -- serial and parallel."""

    def _tied_reports(self):
        # P1 and P3 are true in exactly the same runs (perfectly
        # correlated duplicates), so their Importance is identical; P0
        # and P2 are weaker noise.  The engine must select the lower
        # index (1) first at every worker count.  The pattern repeats so
        # the Increase interval clears zero and survives pruning.
        runs = [
            (True, {1, 3}, None),
            (True, {1, 3}, None),
            (True, {1, 3, 0}, None),
            (True, {2}, None),
            (False, {0}, None),
            (False, {2}, None),
            (False, set(), None),
            (False, set(), None),
        ] * 5
        return make_reports(4, runs)

    def test_serial_selects_lowest_index(self):
        reports = self._tied_reports()
        result = eliminate(reports, max_predictors=2)
        assert result.selected[0].predicate.index == 1

    def test_parallel_matches_serial_under_ties(self, tmp_path):
        reports = self._tied_reports()
        store = ShardStore.create(
            str(tmp_path / "tied"), "tied", reports.table, SamplingPlan.full()
        )
        for lo, hi in partition_bounds(reports.n_runs, 3):
            mask = np.zeros(reports.n_runs, dtype=bool)
            mask[lo:hi] = True
            store.append_shard(reports.subset(mask), seed_start=lo)
        store = ShardStore.open(store.directory)
        picks = {}
        for jobs in JOB_COUNTS:
            analysis = AnalysisEngine(jobs=jobs).analyze_store(store)
            picks[jobs] = [s.predicate.index for s in analysis.elimination.selected]
        assert picks[1][0] == 1
        assert picks[1] == picks[2] == picks[4]


class TestLemma31ThroughEngine:
    def test_every_intersecting_bug_covered(self, tmp_path):
        """Lemma 3.1 holds through the parallel path: every bug whose
        profile intersects the predicated runs gets a predictor."""
        from repro.core.truth import GroundTruth

        # Two disjoint bugs, each with a faithful predictor, plus noise;
        # the pattern repeats so both predictors survive pruning.
        runs = [
            (True, {0}, None),
            (True, {0}, None),
            (True, {0, 2}, None),
            (True, {1}, None),
            (True, {1, 2}, None),
            (False, {2}, None),
            (False, set(), None),
            (False, {2}, None),
        ] * 5
        reports = make_reports(3, runs)
        truth = GroundTruth(bug_ids=["bug-a", "bug-b"])
        bug_of_run = [
            ["bug-a"], ["bug-a"], ["bug-a"], ["bug-b"], ["bug-b"], [], [], []
        ] * 5
        for bugs in bug_of_run:
            truth.add_run(bugs)
        store = ShardStore.create(
            str(tmp_path / "lemma"), "lemma", reports.table, SamplingPlan.full()
        )
        for lo, hi in partition_bounds(reports.n_runs, 2):
            mask = np.zeros(reports.n_runs, dtype=bool)
            mask[lo:hi] = True
            store.append_shard(
                reports.subset(mask), truth=truth.subset(mask), seed_start=lo
            )
        store = ShardStore.open(store.directory)
        for jobs in JOB_COUNTS:
            analysis = AnalysisEngine(jobs=jobs).analyze_store(store)
            selected = [s.predicate.index for s in analysis.elimination.selected]
            covered = bugs_covered(
                analysis.reports, analysis.truth, selected
            )
            assert set(covered) == {"bug-a", "bug-b"}


class TestEngineUnit:
    """Direct engine coverage: partitioning, concatenation, errors."""

    def test_partition_bounds_cover_exactly(self):
        for n in (0, 1, 2, 5, 17, 100):
            for parts in (1, 2, 3, 7, 150):
                bounds = partition_bounds(n, parts)
                assert len(bounds) == min(max(parts, 1), n) if n else bounds == []
                flat = [i for lo, hi in bounds for i in range(lo, hi)]
                assert flat == list(range(n))
                assert all(hi > lo for lo, hi in bounds)

    def test_partition_bounds_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            partition_bounds(-1, 2)

    def test_concat_scores_roundtrip(self):
        reports = make_reports(
            5,
            [(True, {0, 1}, None), (True, {2}, None), (False, {3}, None)],
        )
        stats = SufficientStats.from_reports(reports)
        whole = stats.to_scores()
        parts = [
            stats.slice_predicates(lo, hi).to_scores()
            for lo, hi in partition_bounds(stats.n_predicates, 3)
        ]
        _assert_scores_bitwise_equal(concat_scores(parts), whole)

    def test_concat_scores_single_part_passthrough(self):
        reports = make_reports(2, [(True, {0}, None), (False, {1}, None)])
        scores = SufficientStats.from_reports(reports).to_scores()
        assert concat_scores([scores]) is scores

    def test_concat_scores_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            concat_scores([])

    def test_engine_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            AnalysisEngine(jobs=0)

    def test_empty_store_rejected(self, tmp_path):
        reports = make_reports(2, [(True, {0}, None)])
        store = ShardStore.create(
            str(tmp_path / "empty"), "empty", reports.table, SamplingPlan.full()
        )
        with pytest.raises(ValueError, match="empty shard store"):
            AnalysisEngine(jobs=2).store_stats(store)

    def test_analyze_reports_stats_only(self):
        reports = make_reports(
            3, [(True, {0}, None), (True, {0, 1}, None), (False, {2}, None)]
        )
        analysis = AnalysisEngine(jobs=2).analyze_reports(reports, stats_only=True)
        assert analysis.elimination is None
        reference = compute_scores(reports)
        _assert_scores_bitwise_equal(analysis.scores, reference)

    def test_corruption_surfaces_from_workers(self, tmp_path):
        """A damaged shard raises the same typed error through the pool."""
        from repro.store.errors import StoreError

        reports = make_reports(
            3, [(True, {0}, None), (False, {1}, None), (False, {2}, None)]
        )
        store = ShardStore.create(
            str(tmp_path / "dmg"), "dmg", reports.table, SamplingPlan.full()
        )
        for lo, hi in partition_bounds(reports.n_runs, 3):
            mask = np.zeros(reports.n_runs, dtype=bool)
            mask[lo:hi] = True
            store.append_shard(reports.subset(mask), seed_start=lo)
        store = ShardStore.open(store.directory)
        victim = store.shard_paths()[1]
        with open(victim, "r+b") as fh:
            fh.seek(30)
            fh.write(b"\xff\xff\xff\xff")
        for jobs in (1, 2):
            with pytest.raises(StoreError) as exc_info:
                AnalysisEngine(jobs=jobs).store_stats(store)
            assert "shard" in str(exc_info.value)
