"""Unit and property tests for the suspiciousness-measure registry.

Registry invariants (the contract in ``repro/core/measures/registry.py``):

* unknown names raise :class:`UnknownMeasureError` everywhere a name can
  enter (registry, engine, ranking);
* every measure is deterministic -- same statistics, same bits;
* every measure is finite, correctly shaped, and elementwise (checked by
  comparing partitioned evaluation against whole-table evaluation);
* the default ``importance`` entry is bit-identical to the historical
  :func:`repro.core.importance.importance_scores` pipeline;
* measures that guarantee monotonicity in ``F`` (holding everything
  else fixed) actually honour it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import measures
from repro.core.importance import importance_scores
from repro.core.measures import UnknownMeasureError
from repro.core.ranking import rank_by_measure
from repro.core.scores import scores_from_counts

#: Measures whose value is non-decreasing in ``F`` with ``S``,
#: ``F_obs``, ``S_obs`` and the totals held fixed.
MONOTONE_IN_F = ("tarantula", "ochiai", "jaccard", "dstar2", "f1", "increase")


def _scores(F, S, F_obs, S_obs, num_f, num_s):
    return scores_from_counts(
        np.asarray(F, dtype=np.int64),
        np.asarray(S, dtype=np.int64),
        np.asarray(F_obs, dtype=np.int64),
        np.asarray(S_obs, dtype=np.int64),
        num_f,
        num_s,
    )


@st.composite
def count_populations(draw):
    """Consistent sufficient statistics: F <= F_obs <= NumF, same for S."""
    num_f = draw(st.integers(min_value=1, max_value=40))
    num_s = draw(st.integers(min_value=1, max_value=40))
    n = draw(st.integers(min_value=1, max_value=8))
    F_obs = draw(
        st.lists(st.integers(0, num_f), min_size=n, max_size=n)
    )
    S_obs = draw(
        st.lists(st.integers(0, num_s), min_size=n, max_size=n)
    )
    F = [draw(st.integers(0, fo)) for fo in F_obs]
    S = [draw(st.integers(0, so)) for so in S_obs]
    return F, S, F_obs, S_obs, num_f, num_s


class TestRegistry:
    def test_catalogue_is_large_enough(self):
        names = measures.available()
        assert len(names) >= 6
        assert measures.DEFAULT_MEASURE in names
        for required in (
            "importance",
            "increase",
            "tarantula",
            "ochiai",
            "jaccard",
            "dstar2",
            "f1",
            "causal-hybrid",
        ):
            assert required in names

    def test_measures_are_versioned_with_formulas(self):
        for name in measures.available():
            m = measures.get(name)
            assert m.name == name
            assert m.version >= 1
            assert m.formula

    def test_unknown_name_raises_listing_choices(self):
        with pytest.raises(UnknownMeasureError, match="tarantula"):
            measures.get("no-such-measure")
        with pytest.raises(UnknownMeasureError):
            measures.measure_values(
                _scores([1], [0], [1], [1], 2, 2), "no-such-measure"
            )

    def test_unknown_name_rejected_by_engine_before_forking(self):
        from repro.core.engine import AnalysisEngine
        from repro.store.incremental import SufficientStats

        stats = SufficientStats.zeros(3)
        stats.num_failing = 1
        stats.num_successful = 1
        with pytest.raises(UnknownMeasureError):
            AnalysisEngine(jobs=1).score_stats(stats, measure="bogus")

    def test_unknown_name_rejected_by_ranking(self):
        from repro.instrument.tracer import instrument_source

        prog = instrument_source("def f(x):\n    return x > 0\n", "tiny")
        n = len(prog.table.predicates)
        sc = _scores([1] * n, [0] * n, [1] * n, [1] * n, 2, 2)
        with pytest.raises(UnknownMeasureError):
            rank_by_measure(prog.table, sc, measure="bogus")

    def test_lookup_is_case_and_whitespace_insensitive(self):
        assert measures.get(" Importance ").name == "importance"

    def test_reregistration_is_an_error(self):
        with pytest.raises(ValueError, match="already registered"):
            measures.register("importance")(lambda s: s.increase)

    def test_values_validates_shape_and_finiteness(self):
        from repro.core.measures.registry import Measure

        sc = _scores([1, 2], [0, 1], [1, 2], [1, 2], 3, 3)
        bad_shape = Measure("bad-shape", 1, "x", lambda s: np.zeros(5))
        with pytest.raises(ValueError, match="shape"):
            bad_shape.values(sc)
        bad_nan = Measure("bad-nan", 1, "x", lambda s: np.full(2, np.nan))
        with pytest.raises(ValueError, match="non-finite"):
            bad_nan.values(sc)


class TestDefaultMeasureIdentity:
    def test_importance_measure_is_bitwise_importance_scores(self):
        sc = _scores(
            [5, 0, 3, 1, 7], [1, 2, 0, 1, 7], [6, 4, 3, 2, 9], [5, 6, 2, 3, 9], 12, 15
        )
        want = importance_scores(sc).importance
        got = measures.measure_values(sc, "importance")
        assert got.tobytes() == want.tobytes()

    def test_increase_measure_is_bitwise_scores_increase(self):
        sc = _scores([5, 0, 3], [1, 2, 0], [6, 4, 3], [5, 6, 2], 8, 10)
        got = measures.measure_values(sc, "increase")
        assert got.tobytes() == np.asarray(sc.increase, dtype=np.float64).tobytes()


@pytest.mark.property
class TestMeasureProperties:
    @settings(max_examples=60, deadline=None)
    @given(pop=count_populations())
    def test_deterministic_finite_and_shaped(self, pop):
        F, S, F_obs, S_obs, num_f, num_s = pop
        sc = _scores(F, S, F_obs, S_obs, num_f, num_s)
        for name in measures.available():
            a = measures.measure_values(sc, name)
            b = measures.measure_values(sc, name)
            assert a.shape == (len(F),)
            assert np.all(np.isfinite(a))
            assert a.tobytes() == b.tobytes(), name

    @settings(max_examples=60, deadline=None)
    @given(pop=count_populations())
    def test_elementwise_partition_invariance(self, pop):
        """Scoring any prefix/suffix split concatenates to the full table."""
        F, S, F_obs, S_obs, num_f, num_s = pop
        n = len(F)
        cut = n // 2
        whole = _scores(F, S, F_obs, S_obs, num_f, num_s)
        left = _scores(F[:cut], S[:cut], F_obs[:cut], S_obs[:cut], num_f, num_s)
        right = _scores(F[cut:], S[cut:], F_obs[cut:], S_obs[cut:], num_f, num_s)
        for name in measures.available():
            full = measures.measure_values(whole, name)
            parts = np.concatenate(
                [
                    measures.measure_values(left, name) if cut else np.empty(0),
                    measures.measure_values(right, name),
                ]
            )
            assert full.tobytes() == parts.tobytes(), name

    @settings(max_examples=60, deadline=None)
    @given(pop=count_populations(), data=st.data())
    def test_monotone_measures_non_decreasing_in_F(self, pop, data):
        F, S, F_obs, S_obs, num_f, num_s = pop
        idx = data.draw(st.integers(0, len(F) - 1))
        if F[idx] >= F_obs[idx]:
            return  # cannot raise F without breaking F <= F_obs
        bumped = list(F)
        bumped[idx] += 1
        base = _scores(F, S, F_obs, S_obs, num_f, num_s)
        more = _scores(bumped, S, F_obs, S_obs, num_f, num_s)
        for name in MONOTONE_IN_F:
            lo = measures.measure_values(base, name)[idx]
            hi = measures.measure_values(more, name)[idx]
            assert hi >= lo, f"{name}: F {F[idx]}->{bumped[idx]} gave {lo}->{hi}"


class TestMeasureRanking:
    def test_rank_by_measure_default_covers_whole_table(self):
        from repro.instrument.tracer import instrument_source

        prog = instrument_source(
            "def f(x):\n    if x > 0:\n        return 1\n    return 0\n", "tiny"
        )
        n = len(prog.table.predicates)
        sc = _scores([3, 0, 2][:n] + [1] * max(0, n - 3),
                     [0, 1, 1][:n] + [1] * max(0, n - 3),
                     [3] * n, [2] * n, 4, 4)
        ranking = rank_by_measure(prog.table, sc, measure="jaccard")
        assert len(ranking.entries) == n
        assert [e.rank for e in ranking.entries] == list(range(1, n + 1))
        values = [e.sort_key for e in ranking.entries]
        assert values == sorted(values, reverse=True)

    def test_importance_ranking_matches_historical_strategy(self, request):
        """rank_by_measure('importance') on the paper's candidate mask ==
        rank_from_scores BY_IMPORTANCE, entry for entry."""
        from repro.core.ranking import RankingStrategy, rank_from_scores

        experiment = request.getfixturevalue("ccrypt_experiment")
        sc = _scores_from_experiment(experiment)
        table = experiment.reports.table
        candidates = sc.defined & (sc.increase > 0.0)
        old = rank_from_scores(table, sc, RankingStrategy.BY_IMPORTANCE)
        new = rank_by_measure(table, sc, measure="importance", candidates=candidates)
        assert [e.predicate.index for e in new.entries] == [
            e.predicate.index for e in old.entries
        ]
        assert [e.sort_key for e in new.entries] == [e.sort_key for e in old.entries]


def _scores_from_experiment(experiment):
    from repro.store.incremental import SufficientStats

    stats = SufficientStats.from_reports(experiment.reports)
    return scores_from_counts(
        stats.F,
        stats.S,
        stats.F_obs,
        stats.S_obs,
        stats.num_failing,
        stats.num_successful,
    )
