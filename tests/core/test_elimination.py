"""Tests for iterative redundancy elimination, including Lemma 3.1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.elimination import DiscardStrategy, eliminate
from repro.core.scores import compute_scores

from tests.helpers import make_reports


def _two_bug_population(n=30):
    """Two disjoint bugs with dedicated predictors plus one redundant
    shadow of predictor 0."""
    runs = []
    for i in range(n):
        runs.append((True, {0, 2}, None))  # bug A: P0 and its shadow P2
    for i in range(n // 3):
        runs.append((True, {1}, None))  # bug B (rarer): P1
    for i in range(2 * n):
        runs.append((False, set(), None))
    return make_reports(3, runs)


class TestBasicElimination:
    def test_selects_one_predictor_per_bug(self):
        reports = _two_bug_population()
        result = eliminate(reports)
        names = [p.name for p in result.predicates]
        # P0 (or its shadow) first, P1 eventually; the shadow must not
        # be selected as an additional "bug".
        assert names[0] in ("P0", "P2")
        assert "P1" in names
        assert len(result) == 2

    def test_redundant_predicate_deflated_after_selection(self):
        reports = _two_bug_population()
        result = eliminate(reports)
        first = result.selected[0]
        # The shadow's failing runs vanish with P0's, so it is never
        # selected; the second selection covers bug B.
        second = result.selected[1]
        assert second.predicate.name == "P1"
        assert second.effective.num_failing < first.effective.num_failing

    def test_initial_vs_effective_stats(self):
        reports = _two_bug_population()
        result = eliminate(reports)
        second = result.selected[1]
        # Initial stats were computed over the full population.
        assert second.initial.num_failing > second.effective.num_failing

    def test_max_predictors_caps_output(self):
        reports = _two_bug_population()
        result = eliminate(reports, max_predictors=1)
        assert len(result) == 1

    def test_candidate_mask_restricts_selection(self):
        reports = _two_bug_population()
        mask = np.array([False, True, True])
        result = eliminate(reports, candidates=mask)
        assert all(p.name != "P0" for p in result.predicates)

    def test_mismatched_candidate_mask_rejected(self):
        reports = _two_bug_population()
        with pytest.raises(ValueError):
            eliminate(reports, candidates=np.array([True]))

    def test_all_failures_covered_leaves_none_remaining(self):
        reports = _two_bug_population()
        result = eliminate(reports)
        assert result.remaining_failing == 0


class TestDiscardStrategies:
    def _population(self):
        # One bug; P0 true in all its failures and some successes.
        runs = [(True, {0}, None)] * 12 + [(False, {0}, None)] * 4
        runs += [(False, set(), None)] * 20
        return make_reports(1, runs)

    def test_strategy1_discards_all_true_runs(self):
        result = eliminate(self._population(), strategy=DiscardStrategy.DISCARD_ALL)
        assert result.selected[0].runs_discarded == 16

    def test_strategy2_discards_only_failing_runs(self):
        result = eliminate(
            self._population(), strategy=DiscardStrategy.DISCARD_FAILING
        )
        assert result.selected[0].runs_discarded == 12

    def test_strategy3_relabels_instead_of_discarding(self):
        result = eliminate(self._population(), strategy=DiscardStrategy.RELABEL)
        assert result.selected[0].runs_discarded == 0
        assert result.selected[0].failing_runs_covered == 12

    @pytest.mark.parametrize(
        "strategy",
        [DiscardStrategy.DISCARD_ALL, DiscardStrategy.DISCARD_FAILING, DiscardStrategy.RELABEL],
    )
    def test_all_strategies_terminate_and_cover(self, strategy):
        reports = _two_bug_population()
        result = eliminate(reports, strategy=strategy)
        names = [p.name for p in result.predicates]
        assert names and names[0] in ("P0", "P2")
        assert "P1" in names


class TestComplementTheorem:
    def test_complement_increase_nonnegative_after_selection(self):
        """Section 5: once P is selected (strategy 1), Increase(~P) is
        non-negative if defined.  Build P and ~P explicitly."""
        # P true in bug-A failures; ~P true in every other observed run.
        runs = []
        for _ in range(20):
            runs.append((True, {0}, {0, 1}))
        for _ in range(10):
            runs.append((True, {1}, {0, 1}))  # bug B runs: ~P true
        for _ in range(40):
            runs.append((False, {1}, {0, 1}))
        reports = make_reports(2, runs)
        before = compute_scores(reports)
        # ~P (P1) is anti-correlated with failure before selection.
        assert before.increase[1] < 0
        result = eliminate(reports, max_predictors=1)
        assert result.predicates[0].name == "P0"
        remaining = ~reports.true_mask(0)
        after = compute_scores(reports, run_mask=remaining)
        if after.defined[1]:
            assert after.increase[1] >= -1e-12


class TestLemma31:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_every_intersecting_bug_gets_a_predictor(self, data):
        """Lemma 3.1: if a bug's profile intersects the predicated runs,
        some selected predicate predicts at least one of its failures."""
        n_preds = data.draw(st.integers(1, 4))
        n_bugs = data.draw(st.integers(1, 3))
        n_fail = data.draw(st.integers(1, 12))
        n_succ = data.draw(st.integers(0, 12))

        bug_of_run = [
            data.draw(st.integers(0, n_bugs - 1)) for _ in range(n_fail)
        ]
        true_sets = []
        for _ in range(n_fail):
            true_sets.append(
                data.draw(st.sets(st.integers(0, n_preds - 1), max_size=n_preds))
            )
        runs = [(True, ts, None) for ts in true_sets]
        runs += [
            (
                False,
                data.draw(st.sets(st.integers(0, n_preds - 1), max_size=1)),
                None,
            )
            for _ in range(n_succ)
        ]
        reports = make_reports(n_preds, runs)
        result = eliminate(reports, min_importance=-1.0)

        selected = [p.index for p in result.predicates]
        covered_runs = set()
        for p in selected:
            covered_runs.update(reports.runs_where_true(p).tolist())

        # Z = union of predicated runs over ALL predicates.
        all_predicated = set()
        for p in range(n_preds):
            all_predicated.update(reports.runs_where_true(p).tolist())

        for bug in range(n_bugs):
            profile = {i for i, b in enumerate(bug_of_run) if b == bug}
            if profile & all_predicated:
                assert profile & covered_runs, (
                    f"bug {bug} intersects predicated runs but got no predictor"
                )


class TestTieDeterminism:
    """Regression: equal-Importance candidates select in predicate-index
    order.  ``np.argmax`` takes the first maximum, so the choice is a
    pure function of the scores -- never of dict ordering, working-copy
    layout, or worker count (the parallel side is pinned by
    ``tests/core/test_engine_differential.py``)."""

    def _tied_population(self):
        # P1 and P3 are perfectly correlated (identical run patterns),
        # hence exactly tied on Importance; P0/P2 are noise.
        runs = [
            (True, {1, 3}, None),
            (True, {1, 3}, None),
            (True, {1, 3, 0}, None),
            (True, {2}, None),
            (False, {0}, None),
            (False, {2}, None),
            (False, set(), None),
            (False, set(), None),
        ] * 5
        return make_reports(4, runs)

    def test_lowest_index_wins_the_tie(self):
        reports = self._tied_population()
        scores = compute_scores(reports)
        from repro.core.importance import importance_scores

        imp = importance_scores(scores).importance
        assert imp[1] == imp[3]  # the tie is real
        result = eliminate(reports, max_predictors=2)
        assert result.selected[0].predicate.index == 1

    def test_tie_break_stable_across_strategies(self):
        reports = self._tied_population()
        for strategy in DiscardStrategy:
            result = eliminate(reports, strategy=strategy, max_predictors=2)
            assert result.selected[0].predicate.index == 1

    def test_repeated_runs_identical(self):
        reports = self._tied_population()
        first = eliminate(reports, max_predictors=4)
        second = eliminate(reports, max_predictors=4)
        assert [s.predicate.index for s in first.selected] == [
            s.predicate.index for s in second.selected
        ]
