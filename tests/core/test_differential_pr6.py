"""Differential suite for the raw-speed pass: fast paths change no bits.

Four independent equivalences, each across all five paper subjects:

* **Sampler fast path vs legacy dispatch** -- the inlined-countdown
  helpers (``Runtime(sampler="fast")``, the default) produce the exact
  run records the original ``_take``-dispatch helpers produce for the
  same seeds, under full, uniform and per-site plans;
* **Archive v1 vs v2 vs v3** -- one population saved in every readable
  layout loads back to bitwise-identical scores;
* **Serial vs ``--jobs``** over a v3 (memory-mapped) store -- the
  parallel engine's bit-identity contract extends to the zero-copy
  reader;
* **Observability on vs off** -- metrics instrumentation never touches
  the analysed numbers.

Float comparisons are bitwise (``tobytes``), not ``allclose``; weakening
any equality here to a tolerance is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scores import compute_scores
from repro.harness.runner import run_trials
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.store import ShardStore
from repro.subjects.bc import BcSubject
from repro.subjects.ccrypt import CcryptSubject
from repro.subjects.exif import ExifSubject
from repro.subjects.moss import MossSubject
from repro.subjects.rhythmbox import RhythmboxSubject

SUBJECTS = [MossSubject, CcryptSubject, BcSubject, ExifSubject, RhythmboxSubject]

SUBJECT_FIXTURES = [
    "moss_experiment",
    "ccrypt_experiment",
    "bc_experiment",
    "exif_experiment",
    "rhythmbox_experiment",
]

_SCORE_FIELDS = (
    "F",
    "S",
    "F_obs",
    "S_obs",
    "failure",
    "context",
    "increase",
    "increase_se",
    "increase_lo",
    "increase_hi",
    "z",
    "defined",
)


def _assert_scores_bitwise_equal(a, b, label=""):
    for name in _SCORE_FIELDS:
        lhs, rhs = getattr(a, name), getattr(b, name)
        assert np.asarray(lhs).tobytes() == np.asarray(rhs).tobytes(), (
            f"{label}: score field {name} differs"
        )
    assert a.num_failing == b.num_failing and a.num_successful == b.num_successful


def _assert_reports_identical(a, b, label=""):
    assert a.failed.tolist() == b.failed.tolist(), label
    assert (a.site_counts != b.site_counts).nnz == 0, label
    assert (a.true_counts != b.true_counts).nnz == 0, label
    assert a.stacks == b.stacks and a.metas == b.metas, label
    _assert_scores_bitwise_equal(compute_scores(a), compute_scores(b), label)


class TestSamplerFastPathDifferential:
    """The inlined fast-path helpers replay the legacy decision stream."""

    @pytest.mark.parametrize("subject_cls", SUBJECTS)
    def test_fast_equals_legacy_under_uniform_sampling(self, subject_cls):
        subject = subject_cls()
        plan = SamplingPlan.uniform(0.2)
        populations = {}
        for sampler in ("fast", "legacy"):
            program = instrument_source(subject.source(), subject.name)
            program.runtime.select_sampler(sampler)
            populations[sampler] = run_trials(subject, program, 60, plan, seed=11)
        reports_fast, truth_fast = populations["fast"]
        reports_legacy, truth_legacy = populations["legacy"]
        _assert_reports_identical(
            reports_fast, reports_legacy, f"{subject.name}/uniform"
        )
        assert truth_fast.occurrences == truth_legacy.occurrences

    @pytest.mark.parametrize("subject_cls", SUBJECTS)
    def test_fast_equals_legacy_under_full_observation(self, subject_cls):
        subject = subject_cls()
        populations = {}
        for sampler in ("fast", "legacy"):
            program = instrument_source(subject.source(), subject.name)
            program.runtime.select_sampler(sampler)
            populations[sampler] = run_trials(
                subject, program, 40, SamplingPlan.full(), seed=5
            )
        _assert_reports_identical(
            populations["fast"][0], populations["legacy"][0], f"{subject.name}/full"
        )

    def test_fast_equals_legacy_under_per_site_rates(self):
        subject = MossSubject()
        base = instrument_source(subject.source(), subject.name)
        n_sites = len(base.table.sites)
        rates = [0.05 + 0.9 * (i % 7) / 7 for i in range(n_sites)]
        plan = SamplingPlan.per_site(rates)
        populations = {}
        for sampler in ("fast", "legacy"):
            program = instrument_source(subject.source(), subject.name)
            program.runtime.select_sampler(sampler)
            populations[sampler] = run_trials(subject, program, 50, plan, seed=23)
        _assert_reports_identical(
            populations["fast"][0], populations["legacy"][0], "moss/per-site"
        )


class TestArchiveVersionDifferential:
    """One population, three on-disk layouts, identical scores."""

    @pytest.mark.parametrize("fixture", SUBJECT_FIXTURES)
    def test_v1_v2_v3_score_identically(self, fixture, request, tmp_path):
        from repro.core.io import load_reports, save_reports

        experiment = request.getfixturevalue(fixture)
        reports, truth = experiment.reports, experiment.truth
        expected = compute_scores(reports)

        paths = {}
        for version in (2, 3):
            path = tmp_path / f"a.v{version}"
            save_reports(str(path), reports, truth, version=version)
            paths[version] = path
        # Derive a v1 archive by stripping the v2-only members.
        v1 = tmp_path / "a.v1"
        data = dict(np.load(str(paths[2]), allow_pickle=False))
        for key in list(data):
            if key.startswith("stats_") or key == "table_sha":
                del data[key]
        data["format_version"] = np.asarray([1])
        with open(v1, "wb") as fh:
            np.savez_compressed(fh, **data)
        paths[1] = v1

        for version, path in sorted(paths.items()):
            loaded, loaded_truth = load_reports(str(path))
            _assert_scores_bitwise_equal(
                compute_scores(loaded), expected, f"{fixture}/v{version}"
            )
            assert loaded.failed.tolist() == reports.failed.tolist()
            assert loaded_truth is not None
            assert loaded_truth.occurrences == truth.occurrences


def _v3_store(directory, experiment, n_shards=3):
    from repro.core.engine import partition_bounds
    from repro.core.io import V3_MAGIC

    reports, truth = experiment.reports, experiment.truth
    store = ShardStore.create(
        str(directory), "differential", reports.table, SamplingPlan.full()
    )
    for lo, hi in partition_bounds(reports.n_runs, n_shards):
        mask = np.zeros(reports.n_runs, dtype=bool)
        mask[lo:hi] = True
        store.append_shard(reports.subset(mask), truth=truth.subset(mask), seed_start=lo)
    for path in store.shard_paths():
        with open(path, "rb") as fh:
            assert fh.read(len(V3_MAGIC)) == V3_MAGIC  # the store really is v3
    return ShardStore.open(store.directory)


class TestV3StoreParallelDifferential:
    """Zero-copy shard streaming is bit-identical, serial or parallel."""

    @pytest.mark.parametrize("fixture", SUBJECT_FIXTURES)
    def test_jobs_match_serial_over_v3_store(self, fixture, request, tmp_path):
        experiment = request.getfixturevalue(fixture)
        store = _v3_store(tmp_path / "store", experiment)
        expected = compute_scores(experiment.reports)
        serial = store.compute_scores(jobs=1)
        _assert_scores_bitwise_equal(serial, expected, f"{fixture}/serial-v3")
        for jobs in (2, 3):
            parallel = ShardStore.open(store.directory).compute_scores(jobs=jobs)
            _assert_scores_bitwise_equal(
                parallel, serial, f"{fixture}/jobs={jobs}"
            )

    def test_v3_store_audit_recover_roundtrip(self, tmp_path, moss_experiment):
        """The commit protocol's verification path covers v3 shards."""
        store = _v3_store(tmp_path / "store", moss_experiment)
        assert store.audit().clean
        merged, _ = store.load_merged()
        _assert_scores_bitwise_equal(
            compute_scores(merged), compute_scores(moss_experiment.reports), "merged"
        )


class TestObservabilityDifferential:
    """Metrics on vs off never changes an analysed bit."""

    @pytest.mark.parametrize("fixture", SUBJECT_FIXTURES)
    def test_obs_toggle_is_score_neutral(self, fixture, request, tmp_path):
        from repro import obs

        experiment = request.getfixturevalue(fixture)
        store = _v3_store(tmp_path / "store", experiment)
        baseline = store.compute_scores(jobs=1)
        obs.configure()
        try:
            with_obs = ShardStore.open(store.directory).compute_scores(jobs=1)
        finally:
            obs.shutdown()
        _assert_scores_bitwise_equal(with_obs, baseline, f"{fixture}/obs")
