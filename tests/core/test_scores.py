"""Tests for Failure/Context/Increase, including the paper's examples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scores import compute_scores, z_test_pvalues

from tests.helpers import make_reports


class TestBasicScores:
    def test_failure_counts_only_runs_where_true(self):
        # P0 true in 2 failing + 1 successful run; observed everywhere.
        reports = make_reports(
            1,
            [
                (True, {0}, None),
                (True, {0}, None),
                (False, {0}, None),
                (False, set(), None),
                (True, set(), None),
            ],
        )
        s = compute_scores(reports)
        assert s.F[0] == 2 and s.S[0] == 1
        assert s.failure[0] == pytest.approx(2 / 3)
        assert s.F_obs[0] == 3 and s.S_obs[0] == 2
        assert s.context[0] == pytest.approx(3 / 5)
        assert s.increase[0] == pytest.approx(2 / 3 - 3 / 5)

    def test_unobserved_runs_do_not_affect_failure(self):
        # Same true-pattern, but many unrelated failing runs never
        # observe P0's site: Failure(P) must be unchanged (Section 3.1:
        # "the causes of other independent bugs do not affect
        # Failure(P)").
        base = make_reports(1, [(True, {0}, None), (False, {0}, None)])
        noisy = make_reports(
            1,
            [
                (True, {0}, None),
                (False, {0}, None),
                (True, set(), set()),
                (True, set(), set()),
            ],
        )
        assert compute_scores(base).failure[0] == compute_scores(noisy).failure[0]

    def test_doomed_path_predicate_has_zero_increase(self):
        """The paper's x==0 example: a predicate only checked on a path
        where the program is already doomed has Increase == 0."""
        # Site 0: f == NULL (the real cause), observed in every run.
        # Site 1: x == 0, only observed (and always true) in failing runs.
        reports = make_reports(
            2,
            [
                (True, {0, 1}, {0, 1}),
                (True, {0, 1}, {0, 1}),
                (False, set(), {0}),
                (False, set(), {0}),
                (False, set(), {0}),
            ],
        )
        s = compute_scores(reports)
        # Both have Failure == 1.0 ...
        assert s.failure[0] == 1.0
        assert s.failure[1] == 1.0
        # ... but only the cause has positive Increase.
        assert s.increase[0] > 0.5
        assert s.increase[1] == pytest.approx(0.0)

    def test_deterministic_bug_definition(self):
        reports = make_reports(
            1, [(True, {0}, None), (False, set(), None), (True, set(), None)]
        )
        row = compute_scores(reports).row(0)
        assert row.deterministic  # S(P)=0, F(P)>0
        assert row.failure == 1.0

    def test_undefined_scores_are_flagged_not_nan(self):
        # P0 never observed at all.
        reports = make_reports(1, [(True, set(), set()), (False, set(), set())])
        s = compute_scores(reports)
        assert not s.defined[0]
        assert s.increase[0] == 0.0
        assert np.isfinite(s.increase).all()

    def test_run_mask_restricts_population(self):
        reports = make_reports(
            1,
            [(True, {0}, None), (False, {0}, None), (True, {0}, None)],
        )
        mask = np.array([True, True, False])
        s = compute_scores(reports, run_mask=mask)
        assert s.F[0] == 1 and s.S[0] == 1
        assert s.num_failing == 1


class TestStatistics:
    def test_confidence_interval_narrows_with_more_data(self):
        few = make_reports(
            1, [(True, {0}, None), (False, set(), None)] * 3
        )
        many = make_reports(
            1, [(True, {0}, None), (False, set(), None)] * 60
        )
        se_few = compute_scores(few).increase_se[0]
        se_many = compute_scores(many).increase_se[0]
        assert se_many < se_few

    def test_higher_confidence_widens_interval(self):
        reports = make_reports(1, [(True, {0}, None), (False, set(), None)] * 10)
        lo_90 = compute_scores(reports, confidence=0.90).increase_lo[0]
        lo_99 = compute_scores(reports, confidence=0.99).increase_lo[0]
        assert lo_99 < lo_90

    def test_invalid_confidence_rejected(self):
        reports = make_reports(1, [(True, {0}, None)])
        with pytest.raises(ValueError):
            compute_scores(reports, confidence=1.5)

    def test_z_pvalues_small_for_strong_predictors(self):
        reports = make_reports(
            1,
            [(True, {0}, None)] * 30 + [(False, set(), None)] * 30,
        )
        s = compute_scores(reports)
        p = z_test_pvalues(s)
        assert p[0] < 0.001

    def test_z_pvalue_undefined_rows_never_significant(self):
        """Regression: rows where the z statistic is undefined (a site
        never observed in failing runs, never observed in successful
        runs, or with zero pooled variance) used to get p = 0.5 from the
        placeholder z = 0 -- significant at any alpha > 0.5.  They must
        report p = 1.0 so no filter can keep them."""
        reports = make_reports(
            3,
            [
                # P0: observed only in failing runs -> S_obs == 0.
                (True, {0}, {0}),
                (True, {0}, {0}),
                # P1: observed only in successful runs -> F_obs == 0.
                (False, {1}, {1}),
                # P2: observed in both outcomes, always true -> pooled
                # variance is zero.
                (True, {2}, {2}),
                (False, {2}, {2}),
            ],
        )
        s = compute_scores(reports)
        assert not s.z_defined[:3].any()
        np.testing.assert_array_equal(z_test_pvalues(s)[:3], 1.0)

    def test_ztest_pruning_drops_undefined_rows(self):
        from repro.core.pruning import prune_predicates

        reports = make_reports(
            2,
            # P0 a genuine predictor; P1 seen only in failing runs
            # (undefined z) -- it must not survive the z-test filter.
            [(True, {0, 1}, {0, 1})] * 25 + [(False, set(), {0})] * 25,
        )
        result = prune_predicates(reports, method="ztest")
        assert result.kept[0]
        assert not result.kept[1]

    @settings(max_examples=60, deadline=None)
    @given(
        f_true=st.integers(0, 20),
        f_obs_extra=st.integers(0, 20),
        s_true=st.integers(0, 20),
        s_obs_extra=st.integers(0, 20),
    )
    def test_increase_positive_iff_pf_greater_ps(
        self, f_true, f_obs_extra, s_true, s_obs_extra
    ):
        """Section 3.2's equivalence: Increase(P) > 0 <=> pf(P) > ps(P)."""
        runs = (
            [(True, {0}, None)] * f_true
            + [(True, set(), None)] * f_obs_extra
            + [(False, {0}, None)] * s_true
            + [(False, set(), None)] * s_obs_extra
        )
        if not runs:
            return
        reports = make_reports(1, runs)
        s = compute_scores(reports)
        if not s.defined[0]:
            return
        if s.F_obs[0] == 0 or s.S_obs[0] == 0:
            return
        assert (s.increase[0] > 1e-12) == (s.pf[0] > s.ps[0] + 1e-12)
