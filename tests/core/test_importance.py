"""Tests for the harmonic-mean Importance metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.importance import (
    harmonic_importance,
    importance_scores,
    log_sensitivity,
)
from repro.core.scores import compute_scores

from tests.helpers import make_reports


class TestSensitivity:
    def test_log_normalisation(self):
        sens = log_sensitivity(np.array([1, 10, 100]), num_failing=100)
        assert sens[0] == pytest.approx(0.0)  # log 1 = 0
        assert sens[1] == pytest.approx(0.5)
        assert sens[2] == pytest.approx(1.0)

    def test_zero_failures_give_zero(self):
        assert log_sensitivity(np.array([0]), 50)[0] == 0.0

    def test_degenerate_numf_gives_zero(self):
        assert log_sensitivity(np.array([5]), 1)[0] == 0.0
        assert log_sensitivity(np.array([5]), 0)[0] == 0.0


class TestHarmonicMean:
    def test_balances_both_terms(self):
        h = harmonic_importance(np.array([0.5]), np.array([0.5]))
        assert h[0] == pytest.approx(0.5)

    def test_zero_when_either_term_nonpositive(self):
        assert harmonic_importance(np.array([0.0]), np.array([0.9]))[0] == 0.0
        assert harmonic_importance(np.array([-0.2]), np.array([0.9]))[0] == 0.0
        assert harmonic_importance(np.array([0.9]), np.array([0.0]))[0] == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        inc=st.floats(0.01, 1.0),
        sens=st.floats(0.01, 1.0),
    )
    def test_bounded_by_min_and_max(self, inc, sens):
        """The harmonic mean lies between its arguments (and below 2x min)."""
        h = harmonic_importance(np.array([inc]), np.array([sens]))[0]
        eps = 1e-9
        assert min(inc, sens) >= h / 2 - eps
        assert min(inc, sens) - eps <= h <= max(inc, sens) + eps

    def test_prefers_balance_over_extremes(self):
        """A balanced predictor beats one that is extreme in one
        dimension only -- the Section 3.3 motivation for Table 1(c)."""
        balanced = harmonic_importance(np.array([0.6]), np.array([0.6]))[0]
        specific_only = harmonic_importance(np.array([0.99]), np.array([0.15]))[0]
        sensitive_only = harmonic_importance(np.array([0.15]), np.array([0.99]))[0]
        assert balanced > specific_only
        assert balanced > sensitive_only


class TestImportanceScores:
    def _scores(self, runs):
        reports = make_reports(1, runs)
        return compute_scores(reports)

    def test_importance_zero_for_single_failure(self):
        # F(P)=1 => log F = 0 => sensitivity 0 => importance 0.
        s = self._scores([(True, {0}, None)] + [(False, set(), None)] * 5 + [(True, set(), None)] * 5)
        imp = importance_scores(s)
        assert imp.importance[0] == 0.0

    def test_importance_increases_with_failure_coverage(self):
        few = self._scores(
            [(True, {0}, None)] * 3
            + [(True, set(), None)] * 50
            + [(False, set(), None)] * 50
        )
        many = self._scores(
            [(True, {0}, None)] * 40
            + [(True, set(), None)] * 13
            + [(False, set(), None)] * 50
        )
        assert (
            importance_scores(many).importance[0]
            > importance_scores(few).importance[0]
        )

    def test_delta_interval_contains_point_estimate(self):
        s = self._scores(
            [(True, {0}, None)] * 20 + [(False, set(), None)] * 30
        )
        imp = importance_scores(s)
        assert imp.lo[0] <= imp.importance[0] <= imp.hi[0]
        assert 0.0 <= imp.lo[0] and imp.hi[0] <= 1.0

    def test_interval_degenerate_for_zero_importance(self):
        s = self._scores([(False, {0}, None)] * 10 + [(True, set(), None)] * 2)
        imp = importance_scores(s)
        assert imp.importance[0] == 0.0
        assert imp.se[0] == 0.0
