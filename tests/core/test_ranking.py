"""Tests for the three Table 1 ranking strategies."""

import numpy as np

from repro.core.ranking import RankingStrategy, rank_predicates

from tests.helpers import make_reports


def _table1_population():
    """Reconstruct the Table 1 situation:

    * P0: super-bug-style -- true in MANY failing runs but also many
      successful runs (small Increase, huge F);
    * P1: sub-bug-style -- deterministic (Increase ~ 1) but tiny F;
    * P2: the balanced predictor -- large F and high Increase.
    """
    runs = []
    for _ in range(80):
        runs.append((True, {0, 2}, None))
    for _ in range(5):
        runs.append((True, {0, 1}, None))
    for _ in range(120):
        runs.append((False, {0}, None))
    for _ in range(100):
        runs.append((False, set(), None))
    return make_reports(3, runs)


class TestStrategies:
    def test_sort_by_f_prefers_super_bug_predictor(self):
        reports = _table1_population()
        result = rank_predicates(reports, RankingStrategy.BY_FAILURE_COUNT)
        assert result.entries[0].predicate.name == "P0"
        assert result.entries[0].row.S > 100  # huge white band

    def test_sort_by_increase_prefers_deterministic_sub_bug(self):
        reports = _table1_population()
        result = rank_predicates(reports, RankingStrategy.BY_INCREASE)
        assert result.entries[0].predicate.name == "P1"
        assert result.entries[0].row.F <= 5  # tiny failure coverage

    def test_harmonic_mean_balances_both(self):
        reports = _table1_population()
        result = rank_predicates(reports, RankingStrategy.BY_IMPORTANCE)
        assert result.entries[0].predicate.name == "P2"

    def test_default_candidates_require_positive_increase(self):
        # A pure invariant predicate (true everywhere) never appears.
        runs = [(True, {0}, None)] * 10 + [(False, {0}, None)] * 10
        reports = make_reports(1, runs)
        result = rank_predicates(reports, RankingStrategy.BY_FAILURE_COUNT)
        assert len(result.entries) == 0

    def test_explicit_candidates_and_top(self):
        reports = _table1_population()
        mask = np.array([True, True, False])
        result = rank_predicates(
            reports, RankingStrategy.BY_IMPORTANCE, candidates=mask, top=1
        )
        assert len(result.entries) == 1
        assert result.entries[0].predicate.name != "P2"

    def test_ranks_are_sequential(self):
        reports = _table1_population()
        result = rank_predicates(reports, RankingStrategy.BY_IMPORTANCE)
        assert [e.rank for e in result.entries] == list(
            range(1, len(result.entries) + 1)
        )
