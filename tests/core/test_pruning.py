"""Tests for the Increase > 0 confidence-interval pruning."""

import numpy as np
import pytest

from repro.core.pruning import prune_predicates
from repro.core.scores import compute_scores

from tests.helpers import make_reports


def _balanced_population(n_each=40):
    """P0 = strong predictor; P1 = invariant (always true); P2 = never
    observed; P3 = weak/noisy; half the runs fail."""
    runs = []
    for i in range(n_each):
        # failing runs: P0 true, P1 true, P3 true on every 4th
        runs.append((True, {0, 1} | ({3} if i % 4 == 0 else set()), {0, 1, 3}))
        # successful runs: P1 true, P3 true on every 4th
        runs.append((False, {1} | ({3} if i % 4 == 1 else set()), {0, 1, 3}))
    return make_reports(4, runs)


class TestPruning:
    def test_keeps_true_predictor_drops_invariant(self):
        reports = _balanced_population()
        result = prune_predicates(reports)
        assert result.kept[0]  # the real predictor
        assert not result.kept[1]  # program invariant: Increase = 0
        assert not result.kept[2]  # never observed: undefined
        assert 0 in result.kept_indices

    def test_low_confidence_predicates_are_pruned(self):
        """A predicate true in one failing run has a high Increase but a
        wide interval; the CI filter must reject it."""
        runs = [(True, {0}, {0, 1})]
        runs += [(False, set(), {0, 1}) for _ in range(4)]
        runs += [(True, set(), {0, 1}) for _ in range(2)]
        reports = make_reports(2, runs)
        result = prune_predicates(reports)
        scores = result.scores
        assert scores.increase[0] > 0.5  # looks impressive...
        assert not result.kept[0]  # ...but is statistically unsupported

    def test_reduction_statistics(self):
        reports = _balanced_population()
        result = prune_predicates(reports)
        assert result.n_initial == 4
        assert result.n_kept == int(result.kept.sum())
        assert result.reduction == pytest.approx(1 - result.n_kept / 4)

    def test_min_true_runs_extension(self):
        reports = _balanced_population()
        strict = prune_predicates(reports, min_true_runs=1000)
        assert strict.n_kept == 0

    def test_accepts_precomputed_scores(self):
        reports = _balanced_population()
        scores = compute_scores(reports)
        result = prune_predicates(reports, scores=scores)
        assert result.scores is scores

    def test_empty_population(self):
        reports = make_reports(3, [])
        result = prune_predicates(reports)
        assert result.n_kept == 0
        assert result.reduction >= 0.0


class TestZTestMethod:
    def test_ztest_agrees_on_strong_predictors(self):
        reports = _balanced_population()
        interval = prune_predicates(reports, method="interval")
        ztest = prune_predicates(reports, method="ztest")
        assert ztest.kept[0] and interval.kept[0]
        assert not ztest.kept[1] and not interval.kept[1]

    def test_ztest_rejects_single_observation(self):
        runs = [(True, {0}, {0, 1})]
        runs += [(False, set(), {0, 1}) for _ in range(4)]
        runs += [(True, set(), {0, 1}) for _ in range(2)]
        reports = make_reports(2, runs)
        result = prune_predicates(reports, method="ztest")
        assert not result.kept[0]

    def test_ztest_never_keeps_negative_increase(self):
        # A predicate anti-correlated with failure.
        runs = [(False, {0}, None)] * 20 + [(True, set(), None)] * 10
        reports = make_reports(1, runs)
        result = prune_predicates(reports, method="ztest")
        assert not result.kept[0]

    def test_unknown_method_rejected(self):
        reports = _balanced_population()
        import pytest as _pytest

        with _pytest.raises(ValueError):
            prune_predicates(reports, method="bogus")
