"""Tests for bug-thermometer rendering."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scores import ScoreRow
from repro.core.thermometer import Thermometer, render_table_text

from tests.helpers import make_reports
from repro.core.scores import compute_scores


def _row(F, S, context, increase_lo, increase_hi, increase=None):
    if increase is None:
        increase = increase_lo
    return ScoreRow(
        predicate_index=0,
        F=F,
        S=S,
        F_obs=F,
        S_obs=S,
        failure=0.0,
        context=context,
        increase=increase,
        increase_se=0.0,
        increase_lo=increase_lo,
        increase_hi=increase_hi,
        z=0.0,
        defined=True,
    )


class TestGeometry:
    def test_bands_sum_to_length(self):
        therm = Thermometer.from_row(_row(10, 5, 0.3, 0.2, 0.4), max_runs=100)
        total = therm.context + therm.increase + therm.interval + therm.white
        assert total == pytest.approx(therm.length)

    def test_length_is_log_scaled(self):
        small = Thermometer.from_row(_row(5, 5, 0.1, 0.1, 0.2), max_runs=1000)
        large = Thermometer.from_row(_row(500, 500, 0.1, 0.1, 0.2), max_runs=1000)
        assert large.length > small.length
        # Log scale: 100x the runs is far from 100x the length.
        assert large.length < small.length * 3

    def test_bands_clamped_to_unit_interval(self):
        # Out-of-range inputs (negative lower bound, hi > 1) are clamped.
        therm = Thermometer.from_row(_row(10, 0, 0.9, -0.5, 2.0), max_runs=10)
        assert therm.increase >= 0.0
        assert therm.context + therm.increase + therm.interval <= therm.length + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        F=st.integers(0, 1000),
        S=st.integers(0, 1000),
        context=st.floats(0, 1),
        lo=st.floats(-1, 1),
        width=st.floats(0, 1),
    )
    def test_quantised_bands_fill_bar_exactly(self, F, S, context, lo, width):
        row = _row(F, S, context, lo, min(lo + width, 1.0))
        therm = Thermometer.from_row(row, max_runs=max(F + S, 1))
        text = therm.render_text(20)
        bar = text.strip()[1:-1]
        assert len(bar) >= 1
        assert set(bar) <= {"#", "=", "~", " "}


class TestRendering:
    def test_text_is_fixed_width(self):
        therm = Thermometer.from_row(_row(10, 5, 0.3, 0.2, 0.4), max_runs=100)
        assert len(therm.render_text(24)) == 26  # brackets included

    def test_width_must_be_positive(self):
        therm = Thermometer.from_row(_row(1, 1, 0.5, 0.1, 0.2), max_runs=2)
        with pytest.raises(ValueError):
            therm.render_text(0)

    def test_html_contains_colour_bands(self):
        therm = Thermometer.from_row(_row(50, 5, 0.3, 0.3, 0.5), max_runs=100)
        html = therm.render_html()
        assert "#000000" in html  # context band
        assert "#cc0000" in html  # increase band

    def test_table_rendering_includes_names(self):
        reports = make_reports(
            2, [(True, {0}, None)] * 10 + [(False, {1}, None)] * 10
        )
        scores = compute_scores(reports)
        lines = render_table_text(
            [scores.row(0), scores.row(1)], reports.table
        )
        assert len(lines) == 2
        assert "P0" in lines[0]
        assert "P1" in lines[1]
