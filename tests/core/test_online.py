"""Tests for the on-line failure-prediction monitor (Section 5 extension)."""

import pytest

from repro.core.online import Alert, OnlineMonitor, monitor_from_elimination
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source

SOURCE = '''
def main(job):
    size, key, fast = job
    table = list(range(size))
    if fast:
        index = key % 10
    else:
        index = key % size
    return table[index]
'''


@pytest.fixture()
def program():
    return instrument_source(SOURCE, "online-test")


def _fast_true_predicate(program):
    cands = [p for p in program.table.predicates if p.name == "fast is TRUE"]
    assert cands
    return cands[0].index


class TestMonitor:
    def test_alert_fires_when_predictor_turns_true(self, program):
        pred = _fast_true_predicate(program)
        monitor = OnlineMonitor(program.runtime, {pred: 0.9})
        monitor.install()
        try:
            program.begin_run(SamplingPlan.full(), seed=0)
            with pytest.raises(IndexError):
                program.func("main")((5, 7, True))
        finally:
            monitor.uninstall()
        assert monitor.fired
        assert monitor.alerts[0].predicate.index == pred
        assert monitor.alerts[0].importance == 0.9

    def test_alert_precedes_the_crash(self, program):
        """The predictor captures the cause condition, which is observed
        before the failure -- enabling preemptive action."""
        pred = _fast_true_predicate(program)
        events = []
        monitor = OnlineMonitor(
            program.runtime, {pred: 0.9}, on_alert=lambda a: events.append("alert")
        )
        monitor.install()
        try:
            program.begin_run(SamplingPlan.full(), seed=0)
            try:
                program.func("main")((5, 7, True))
            except IndexError:
                events.append("crash")
        finally:
            monitor.uninstall()
        assert events == ["alert", "crash"]

    def test_no_alert_on_healthy_run(self, program):
        pred = _fast_true_predicate(program)
        monitor = OnlineMonitor(program.runtime, {pred: 0.9})
        monitor.install()
        try:
            program.begin_run(SamplingPlan.full(), seed=0)
            assert program.func("main")((5, 7, False)) == 2
        finally:
            monitor.uninstall()
        assert not monitor.fired

    def test_alerts_fire_once_per_predictor(self, program):
        pred = _fast_true_predicate(program)
        monitor = OnlineMonitor(program.runtime, {pred: 0.5})
        monitor.install()
        try:
            program.begin_run(SamplingPlan.full(), seed=0)
            for _ in range(3):
                try:
                    program.func("main")((5, 7, True))
                except IndexError:
                    pass
        finally:
            monitor.uninstall()
        assert len(monitor.alerts) == 1

    def test_reset_clears_state(self, program):
        pred = _fast_true_predicate(program)
        monitor = OnlineMonitor(program.runtime, {pred: 0.5})
        monitor.install()
        try:
            program.begin_run(SamplingPlan.full(), seed=0)
            try:
                program.func("main")((5, 7, True))
            except IndexError:
                pass
            assert monitor.fired
            monitor.reset()
            assert not monitor.fired
        finally:
            monitor.uninstall()

    def test_uninstall_restores_runtime(self, program):
        from repro.instrument.runtime import Runtime

        pred = _fast_true_predicate(program)
        monitor = OnlineMonitor(program.runtime, {pred: 0.5})
        monitor.install()
        assert "branch" in program.runtime.__dict__  # wrapper installed
        monitor.uninstall()
        assert "branch" not in program.runtime.__dict__
        assert program.runtime.branch.__func__ is Runtime.branch

    def test_semantics_unchanged_under_monitoring(self, program):
        pred = _fast_true_predicate(program)
        monitor = OnlineMonitor(program.runtime, {pred: 0.5})
        monitor.install()
        try:
            program.begin_run(SamplingPlan.full(), seed=0)
            assert program.func("main")((12, 25, True)) == 5
        finally:
            monitor.uninstall()


class TestFromElimination:
    def test_builds_watchlist_from_selected(self, program):
        from repro.core.elimination import eliminate
        from repro.core.pruning import prune_predicates
        from repro.harness.runner import run_trials
        from repro.subjects.base import Subject
        import random

        class S(Subject):
            name = "s"
            entry = "main"

            def source(self):
                return SOURCE

            def generate_input(self, rng):
                return (rng.randint(4, 12), rng.randint(0, 100), rng.random() < 0.4)

        reports, _ = run_trials(S(), program, 800, SamplingPlan.full(), seed=0)
        pruning = prune_predicates(reports)
        result = eliminate(reports, candidates=pruning.kept, max_predictors=3)
        monitor = monitor_from_elimination(program.runtime, result, top=2)
        assert len(monitor.watched) == min(2, len(result.selected))
