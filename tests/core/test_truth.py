"""Tests for ground-truth bug profiles and the Table 3 co-occurrence."""

import numpy as np
import pytest

from repro.core.truth import (
    GroundTruth,
    bugs_covered,
    classify_predictor,
    cooccurrence_table,
    dominant_bug,
)

from tests.helpers import make_reports


def _population_with_truth():
    """Three bugs; bug overlap in run 2 (the paper: more than one bug can
    occur in some runs); bug 'c' never triggers."""
    reports = make_reports(
        2,
        [
            (True, {0}, None),   # bug a
            (True, {1}, None),   # bug b
            (True, {0, 1}, None),  # bugs a+b together
            (False, {0}, None),  # a's predicate true in a passing run
            (False, set(), None),
        ],
    )
    truth = GroundTruth(bug_ids=["a", "b", "c"])
    truth.add_run(["a"])
    truth.add_run(["b"])
    truth.add_run(["a", "b"])
    truth.add_run([])
    truth.add_run([])
    return reports, truth


class TestGroundTruth:
    def test_profiles_are_failing_runs_only(self):
        reports, truth = _population_with_truth()
        profile_a = truth.bug_profile("a", reports)
        assert profile_a.tolist() == [True, False, True, False, False]

    def test_profiles_may_overlap(self):
        reports, truth = _population_with_truth()
        a = truth.bug_profile("a", reports)
        b = truth.bug_profile("b", reports)
        assert (a & b).any()

    def test_triggered_bugs_excludes_silent_ones(self):
        reports, truth = _population_with_truth()
        assert truth.triggered_bugs(reports) == ["a", "b"]

    def test_unknown_bug_rejected(self):
        truth = GroundTruth(bug_ids=["a"])
        with pytest.raises(ValueError):
            truth.add_run(["zzz"])

    def test_misaligned_population_rejected(self):
        reports, truth = _population_with_truth()
        truth.occurrences.pop()
        with pytest.raises(ValueError):
            truth.bug_profile("a", reports)

    def test_subset_keeps_alignment(self):
        reports, truth = _population_with_truth()
        mask = np.array([True, False, True, False, True])
        sub_r = reports.subset(mask)
        sub_t = truth.subset(mask)
        assert sub_t.n_runs == sub_r.n_runs
        assert sub_t.occurrences[1] == frozenset({"a", "b"})

    def test_occurrence_counts(self):
        _, truth = _population_with_truth()
        assert truth.occurrence_counts() == {"a": 2, "b": 2, "c": 0}


class TestCooccurrence:
    def test_table3_columns(self):
        reports, truth = _population_with_truth()
        table = cooccurrence_table(reports, truth, [0, 1])
        # P0 true in failing runs 0 and 2; bug a in both, bug b in run 2.
        assert table[0] == {"a": 2, "b": 1, "c": 0}
        assert table[1] == {"a": 1, "b": 2, "c": 0}

    def test_dominant_bug_spike(self):
        reports, truth = _population_with_truth()
        assert dominant_bug(reports, truth, 0) == ("a", 2)

    def test_dominant_bug_none_when_predicate_never_fails(self):
        reports = make_reports(1, [(False, {0}, None), (True, set(), None)])
        truth = GroundTruth(bug_ids=["a"])
        truth.add_run([])
        truth.add_run(["a"])
        assert dominant_bug(reports, truth, 0) is None

    def test_classify_predictor_taxonomy(self):
        """Section 1's taxonomy: bug / sub-bug / super-bug predictors."""
        # P0 covers all of bug a's failures; P1 covers all failures of
        # both bugs; P2 covers a sliver of bug a; P3 nothing.
        reports = make_reports(
            4,
            [
                (True, {0, 1, 2}, None),  # a
                (True, {0, 1}, None),     # a
                (True, {0, 1}, None),     # a
                (True, {1}, None),        # b
                (True, {1}, None),        # b
                (False, set(), None),
            ],
        )
        truth = GroundTruth(bug_ids=["a", "b"])
        for bugs in (["a"], ["a"], ["a"], ["b"], ["b"], []):
            truth.add_run(bugs)
        assert classify_predictor(reports, truth, 0) == "bug"
        assert classify_predictor(reports, truth, 1) == "super-bug"
        assert classify_predictor(reports, truth, 2) == "sub-bug"
        assert classify_predictor(reports, truth, 3) == "none"

    def test_bugs_covered_matches_lemma_statement(self):
        reports, truth = _population_with_truth()
        covered = bugs_covered(reports, truth, [0])
        assert covered == {"a", "b"}  # P0's failing runs include run 2 (has b)
        assert bugs_covered(reports, truth, []) == set()
