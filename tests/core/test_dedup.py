"""Tests for intra-site logical redundancy elimination (Section 3.4)."""

import numpy as np

from repro.core.dedup import intra_site_dedup
from repro.core.elimination import eliminate
from repro.core.predicates import PredicateTable, Scheme
from repro.core.reports import ReportBuilder


def _returns_population(values_per_run):
    """One returns site; each run observes the call once with the given
    value, so the six sign predicates form equivalence classes."""
    table = PredicateTable()
    site = table.add_site(Scheme.RETURNS, "f", 1, "g")
    builder = ReportBuilder(table)
    for failed, value in values_per_run:
        true = set()
        if value < 0:
            true = {0, 4, 5}
        elif value == 0:
            true = {1, 3, 5}
        else:
            true = {2, 3, 4}
        builder.add_run(failed, {site.index: 1}, {p: 1 for p in true})
    return builder.build()


class TestDedup:
    def test_always_positive_return_collapses_classes(self):
        # Value always positive: {>0, >=0, !=0} identical; {<0, ==0, <=0}
        # all never-true (one empty-pattern class).
        reports = _returns_population([(False, 5), (True, 3), (False, 9)])
        result = intra_site_dedup(reports)
        assert result.n_classes == 2
        assert result.n_removed == 4
        # Representatives map every predicate to a kept one.
        for pred in range(6):
            rep = result.class_of[pred]
            assert result.representative[rep]

    def test_distinguishing_runs_split_classes(self):
        reports = _returns_population([(True, -1), (False, 0), (False, 2)])
        result = intra_site_dedup(reports)
        # All six predicates have distinct patterns here except none --
        # compute: <0 true in run0; ==0 run1; >0 run2; >=0 runs1,2;
        # !=0 runs0,2; <=0 runs0,1: six distinct patterns.
        assert result.n_classes == 6
        assert result.n_removed == 0

    def test_cross_site_duplicates_are_kept(self):
        """Only *intra-site* redundancy is eliminated; identical
        patterns at different sites survive (the iterative algorithm
        handles those)."""
        table = PredicateTable()
        s1 = table.add_custom_site("f", 1, "a", ["A"])
        s2 = table.add_custom_site("f", 2, "b", ["B"])
        builder = ReportBuilder(table)
        builder.add_run(True, {0: 1, 1: 1}, {0: 1, 1: 1})
        reports = builder.build()
        result = intra_site_dedup(reports)
        assert result.representative.all()

    def test_ablation_nearly_identical_results(self):
        """The paper's finding: elimination with and without the
        optimisation selects equivalent predictors."""
        runs = [(True, 4)] * 10 + [(False, -2)] * 10 + [(True, 0)] * 3
        reports = _returns_population(runs)
        full = eliminate(reports)
        dedup = intra_site_dedup(reports)
        reduced = eliminate(reports, candidates=dedup.representative)
        # Same number of bugs' worth of predictors, and each selected
        # predicate in the reduced run is the representative of an
        # equivalent full-run selection.
        assert len(full) == len(reduced)
        full_classes = {dedup.class_of[s.predicate.index] for s in full.selected}
        reduced_classes = {
            dedup.class_of[s.predicate.index] for s in reduced.selected
        }
        assert full_classes == reduced_classes
