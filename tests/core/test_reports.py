"""Tests for feedback-report storage."""

import numpy as np
import pytest

from repro.core.reports import FeedbackReport, ReportBuilder

from tests.helpers import make_reports, make_table, run_pattern


class TestBuilder:
    def test_counts_roundtrip(self):
        table = make_table(3)
        builder = ReportBuilder(table)
        builder.add_run(True, {0: 5, 2: 1}, {0: 2}, stack=("f", "g"))
        builder.add_run(False, {1: 1}, {1: 1})
        reports = builder.build()
        assert reports.n_runs == 2
        assert reports.num_failing == 1
        assert reports.site_counts[0, 0] == 5
        assert reports.true_counts[0, 0] == 2
        assert reports.stacks[0] == ("f", "g")
        assert reports.stacks[1] is None

    def test_zero_counts_are_not_stored(self):
        table = make_table(2)
        builder = ReportBuilder(table)
        builder.add_run(False, {0: 0}, {1: 0})
        reports = builder.build()
        assert reports.site_counts.nnz == 0
        assert reports.true_counts.nnz == 0

    def test_feedback_report_observed_true(self):
        rep = FeedbackReport(failed=True, pred_true={3: 2})
        assert rep.observed_true(3)
        assert not rep.observed_true(0)


class TestMasks:
    def test_true_mask_and_runs_where_true_agree(self):
        reports = make_reports(
            2,
            [
                (True, {0}, None),
                (False, {1}, None),
                (True, {0, 1}, None),
            ],
        )
        assert run_pattern(reports, 0) == [0, 2]
        mask = reports.true_mask(0)
        assert mask.tolist() == [True, False, True]

    def test_subset_preserves_alignment(self):
        reports = make_reports(
            2,
            [(True, {0}, None), (False, {1}, None), (True, {1}, None)],
        )
        sub = reports.subset(np.array([True, False, True]))
        assert sub.n_runs == 2
        assert sub.failed.tolist() == [True, True]
        assert run_pattern(sub, 1) == [1]

    def test_relabelled_changes_only_labels(self):
        reports = make_reports(1, [(True, {0}, None), (True, set(), None)])
        relabelled = reports.relabelled(reports.true_mask(0))
        assert relabelled.num_failing == 1
        assert reports.num_failing == 2  # original untouched
        assert relabelled.true_counts is reports.true_counts


class TestCoverage:
    def test_site_coverage_sums_observation_counts(self):
        table = make_table(2)
        builder = ReportBuilder(table)
        builder.add_run(False, {0: 3}, {})
        builder.add_run(False, {0: 2, 1: 7}, {})
        reports = builder.build()
        assert reports.site_coverage().tolist() == [5, 7]

    def test_repr_mentions_shape(self):
        reports = make_reports(4, [(False, set(), None)])
        text = repr(reports)
        assert "runs=1" in text
        assert "predicates=4" in text
