"""Differential suite: every measure is bit-identical across every path.

The tentpole contract of the measure registry: for any registered
suspiciousness measure ``m`` and any subject population, the per-predicate
value arrays agree **bitwise** (``tobytes``, never ``allclose``) across

* serial scoring (``AnalysisEngine(jobs=1).score_stats``),
* the parallel engine at ``--jobs`` {2, 4},
* the collection daemon's ``GET /scores?measure=m`` payload, and
* ``federated_scores`` over a two-store split of the same seeds,

on all five paper subjects.  The identity holds *structurally* (measures
are elementwise over sufficient statistics that add exactly) -- these
tests are the enforcement arm.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import measures
from repro.core.engine import AnalysisEngine, partition_bounds
from repro.core.importance import importance_scores
from repro.instrument.sampling import SamplingPlan
from repro.store import ShardStore

SUBJECT_FIXTURES = [
    "moss_experiment",
    "ccrypt_experiment",
    "bc_experiment",
    "exif_experiment",
    "rhythmbox_experiment",
]

JOB_COUNTS = (2, 4)


def _build_store(directory, experiment, n_shards, lo_runs=0, hi_runs=None):
    """Shard a slice of an experiment's population into one store."""
    reports, truth = experiment.reports, experiment.truth
    hi_runs = reports.n_runs if hi_runs is None else hi_runs
    store = ShardStore.create(
        str(directory), "differential", reports.table, SamplingPlan.full()
    )
    span = hi_runs - lo_runs
    for lo, hi in partition_bounds(span, n_shards):
        mask = np.zeros(reports.n_runs, dtype=bool)
        mask[lo_runs + lo : lo_runs + hi] = True
        store.append_shard(
            reports.subset(mask), truth=truth.subset(mask), seed_start=lo_runs + lo
        )
    return ShardStore.open(store.directory)


@pytest.fixture(scope="module")
def measure_stores(tmp_path_factory):
    """Per-subject cache: one 3-shard store plus a disjoint 2-store split."""
    cache = {}

    def get(request, fixture_name):
        if fixture_name not in cache:
            experiment = request.getfixturevalue(fixture_name)
            base = tmp_path_factory.mktemp(fixture_name)
            n = experiment.reports.n_runs
            cache[fixture_name] = {
                "experiment": experiment,
                "whole": _build_store(base / "whole", experiment, 3),
                "split": [
                    _build_store(base / "left", experiment, 2, 0, n // 2),
                    _build_store(base / "right", experiment, 2, n // 2, n),
                ],
            }
        return cache[fixture_name]

    return get


@pytest.mark.parametrize("subject_fixture", SUBJECT_FIXTURES)
class TestMeasureBitIdentity:
    def test_serial_vs_jobs(self, request, measure_stores, subject_fixture):
        """Every measure: jobs {2,4} values == serial values, bitwise."""
        stores = measure_stores(request, subject_fixture)
        stats = AnalysisEngine(jobs=1).store_stats(stores["whole"])
        for name in measures.available():
            serial = AnalysisEngine(jobs=1).score_stats(stats, measure=name)
            assert serial.measure == name
            for jobs in JOB_COUNTS:
                parallel = AnalysisEngine(jobs=jobs).score_stats(stats, measure=name)
                assert (
                    parallel.measure_values.tobytes()
                    == serial.measure_values.tobytes()
                ), (name, jobs)

    def test_federated_vs_single_store(self, request, measure_stores, subject_fixture):
        """Every measure: federated two-store scoring == whole store, bitwise."""
        stores = measure_stores(request, subject_fixture)
        engine = AnalysisEngine(jobs=1)
        whole_stats = engine.store_stats(stores["whole"])
        for name in measures.available():
            whole = engine.score_stats(whole_stats, measure=name)
            federated = engine.federated_scores(stores["split"], measure=name)
            assert federated.measure == name
            assert (
                federated.measure_values.tobytes() == whole.measure_values.tobytes()
            ), name

    def test_scores_payload_vs_serial(self, request, measure_stores, subject_fixture):
        """Every measure: the service's /scores document carries the same
        bits and the same ranking as the serial CLI expression."""
        from repro.serve import CollectionService

        stores = measure_stores(request, subject_fixture)
        experiment = stores["experiment"]
        service = CollectionService(stores["whole"], experiment.config.subject)
        engine = AnalysisEngine(jobs=1)
        stats = engine.store_stats(stores["whole"])
        for name in measures.available():
            scoring = engine.score_stats(stats, measure=name)
            values = scoring.measure_values
            order = sorted(
                scoring.pruning.kept_indices.tolist(),
                key=lambda i: values[i],
                reverse=True,
            )
            payload = service.scores_payload(measure=name)
            assert payload["measure"] == name
            got = [(p["index"], p["score"]) for p in payload["predicates"]]
            want = [(i, float(values[i])) for i in order]
            assert got == want, name  # float() round-trips exactly via IEEE

    def test_default_payload_is_importance(self, request, measure_stores, subject_fixture):
        """No measure= parameter keeps the historical Importance document."""
        from repro.serve import CollectionService

        stores = measure_stores(request, subject_fixture)
        experiment = stores["experiment"]
        service = CollectionService(stores["whole"], experiment.config.subject)
        payload = service.scores_payload(k=10)
        assert payload["measure"] == "importance"
        stats = AnalysisEngine(jobs=1).store_stats(stores["whole"])
        scoring = AnalysisEngine(jobs=1).score_stats(stats)
        imp = importance_scores(scoring.scores).importance
        for p in payload["predicates"]:
            assert p["score"] == p["importance"] == float(imp[p["index"]])


class TestScoresEndpointHTTP:
    """The real HTTP surface: query parsing, 400s, payload equality."""

    @pytest.fixture()
    def server(self, request, measure_stores):
        from repro.serve import CollectionService, FeedbackServer

        stores = measure_stores(request, "ccrypt_experiment")
        service = CollectionService(stores["whole"], stores["experiment"].config.subject)
        server = FeedbackServer(service, port=0).start()
        try:
            yield stores, service, server
        finally:
            server.close(drain=True)

    def _get(self, server, path):
        with urllib.request.urlopen(f"http://127.0.0.1:{server.port}{path}") as resp:
            return json.loads(resp.read().decode("utf-8"))

    def test_measure_param_round_trips(self, server):
        stores, service, srv = server
        for name in measures.available():
            doc = self._get(srv, f"/scores?k=5&measure={name}")
            assert doc["measure"] == name
            want = service.scores_payload(k=5, measure=name)
            assert doc == want

    def test_unknown_measure_is_a_400(self, server):
        _stores, _service, srv = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(srv, "/scores?measure=bogus")
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["error"] == "unknown-measure"
        assert "tarantula" in body["detail"]
