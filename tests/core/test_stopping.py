"""CI-based early stopping (`repro.core.stopping`).

The daemon's ``converged`` flag must be a pure, monotone function of the
committed counts: equal counts give equal verdicts, and collecting more
of the same evidence can never un-converge a subject.  These tests pin
the thresholds, the candidate ranking, and the scale-monotonicity the
Hypothesis suite (tests/serve/test_steering_properties.py) then explores
at random.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stopping import (
    StoppingAssessment,
    StoppingPolicy,
    assess_stats,
)
from repro.store.incremental import SufficientStats

from tests.helpers import make_reports


def stats_from(n_predicates, runs):
    return SufficientStats.from_reports(make_reports(n_predicates, runs))


def scale(stats: SufficientStats, m: int) -> SufficientStats:
    """The 'm identical copies of every run' population."""
    return SufficientStats(
        F=stats.F * m,
        S=stats.S * m,
        F_obs=stats.F_obs * m,
        S_obs=stats.S_obs * m,
        num_failing=stats.num_failing * m,
        num_successful=stats.num_successful * m,
    )


def strong_population(fails=40, succ=60):
    """Predicate 0 perfectly predicts failure; 1 is background noise."""
    runs = [(True, {0, 1} if i % 2 else {0}, None) for i in range(fails)]
    runs += [(False, {1} if i % 2 else set(), None) for i in range(succ)]
    return stats_from(3, runs)


class TestThresholds:
    def test_below_min_runs_never_converges(self):
        stats = strong_population(fails=40, succ=60)
        policy = StoppingPolicy(min_runs=101, min_failing=1, epsilon=10.0)
        verdict = assess_stats(stats, policy)
        assert not verdict.converged
        assert "min_runs" in verdict.reason

    def test_below_min_failing_never_converges(self):
        stats = strong_population(fails=5, succ=95)
        policy = StoppingPolicy(min_runs=10, min_failing=10, epsilon=10.0)
        verdict = assess_stats(stats, policy)
        assert not verdict.converged
        assert "min_failing" in verdict.reason

    def test_no_candidates_never_converges(self):
        # All failures, no successes -> Increase undefined/zero everywhere.
        runs = [(True, {0}, None) for _ in range(120)]
        verdict = assess_stats(
            stats_from(2, runs), StoppingPolicy(min_runs=10, min_failing=10)
        )
        assert not verdict.converged
        assert verdict.reason == "no candidate predictors"

    def test_converges_when_intervals_tighten(self):
        small = strong_population(fails=40, succ=60)
        policy = StoppingPolicy(min_runs=50, min_failing=10, epsilon=0.05)
        assert not assess_stats(small, policy).converged
        big = scale(small, 50)
        verdict = assess_stats(big, policy)
        assert verdict.converged
        assert verdict.n_runs == 5000
        assert all(c.half_width <= policy.epsilon for c in verdict.candidates)

    def test_epsilon_is_inclusive(self):
        stats = scale(strong_population(), 50)
        verdict = assess_stats(stats, StoppingPolicy(min_runs=1, min_failing=1))
        widest = max(c.half_width for c in verdict.candidates)
        at = assess_stats(
            stats, StoppingPolicy(min_runs=1, min_failing=1, epsilon=widest)
        )
        below = assess_stats(
            stats,
            StoppingPolicy(min_runs=1, min_failing=1, epsilon=widest * 0.999),
        )
        assert at.converged
        assert not below.converged


class TestRanking:
    def test_candidates_ranked_by_increase_then_index(self):
        # Predicates 0 and 2 are identical perfect predictors (tied
        # Increase); 1 is weaker.  Ranking: 0, 2 (index tie-break), 1.
        runs = [(True, {0, 2} if i % 3 else {0, 1, 2}, None) for i in range(30)]
        runs += [(False, {1} if i < 5 else set(), None) for i in range(70)]
        stats = stats_from(3, runs)
        verdict = assess_stats(
            stats, StoppingPolicy(min_runs=10, min_failing=10, top_k=3)
        )
        assert [c.index for c in verdict.candidates] == [0, 2, 1]
        assert verdict.candidates[0].increase == verdict.candidates[1].increase

    def test_top_k_limits_examined_candidates(self):
        runs = [(True, {0, 1, 2, 3}, None) for _ in range(30)]
        runs += [(False, set(), None) for _ in range(70)]
        stats = stats_from(5, runs)
        verdict = assess_stats(
            stats, StoppingPolicy(min_runs=10, min_failing=10, top_k=2)
        )
        assert len(verdict.candidates) == 2

    def test_negative_increase_excluded(self):
        # Predicate 1 fires only in successes: Increase < 0, not a candidate.
        runs = [(True, {0}, None) for _ in range(30)]
        runs += [(False, {1}, None) for _ in range(70)]
        stats = stats_from(2, runs)
        verdict = assess_stats(stats, StoppingPolicy(min_runs=10, min_failing=10))
        assert [c.index for c in verdict.candidates] == [0]


class TestMonotonicity:
    @pytest.mark.parametrize("m", [2, 3, 10])
    def test_converged_stays_converged_under_scaling(self, m):
        base = scale(strong_population(), 20)
        policy = StoppingPolicy(min_runs=50, min_failing=10, epsilon=0.1)
        assert assess_stats(base, policy).converged
        assert assess_stats(scale(base, m), policy).converged

    def test_half_widths_shrink_under_scaling(self):
        base = strong_population()
        policy = StoppingPolicy(min_runs=10, min_failing=10)
        before = assess_stats(base, policy)
        after = assess_stats(scale(base, 4), policy)
        assert [c.index for c in before.candidates] == [
            c.index for c in after.candidates
        ]
        for b, a in zip(before.candidates, after.candidates):
            assert a.half_width < b.half_width
            assert a.increase == pytest.approx(b.increase)


class TestPurity:
    def test_equal_counts_equal_verdicts(self):
        a = strong_population()
        b = strong_population()
        va, vb = assess_stats(a), assess_stats(b)
        assert va.to_json() == vb.to_json()

    def test_policy_round_trip(self):
        policy = StoppingPolicy(top_k=3, epsilon=0.07, min_runs=42, min_failing=7)
        assert StoppingPolicy.from_json(policy.to_json()) == policy

    def test_assessment_json_is_plain(self):
        verdict = assess_stats(strong_population())
        doc = verdict.to_json()
        assert isinstance(doc["converged"], bool)
        assert isinstance(doc["candidates"], list)
        for entry in doc["candidates"]:
            assert set(entry) == {"index", "increase", "half_width", "importance"}
            assert np.isfinite(entry["half_width"])
