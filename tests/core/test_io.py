"""Tests for report-archive persistence."""

import numpy as np
import pytest

from repro.core.io import load_reports, save_reports
from repro.core.scores import compute_scores
from repro.core.truth import GroundTruth

from tests.helpers import make_reports


def _population():
    stacks = [("main", "f", "Boom"), None, None]
    reports = make_reports(
        3,
        [
            (True, {0, 2}, None),
            (False, {1}, None),
            (False, set(), {0}),
        ],
        stacks=stacks,
    )
    truth = GroundTruth(bug_ids=["a", "b"])
    truth.add_run(["a"])
    truth.add_run([])
    truth.add_run([])
    return reports, truth


class TestRoundTrip:
    def test_exact_score_roundtrip(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        loaded, loaded_truth = load_reports(str(path))

        before = compute_scores(reports)
        after = compute_scores(loaded)
        np.testing.assert_array_equal(before.F, after.F)
        np.testing.assert_array_equal(before.S, after.S)
        np.testing.assert_allclose(before.increase, after.increase)
        assert loaded.failed.tolist() == reports.failed.tolist()

    def test_stacks_and_metas_roundtrip(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        loaded, _ = load_reports(str(path))
        assert loaded.stacks == reports.stacks

    def test_truth_roundtrip(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        _, loaded_truth = load_reports(str(path))
        assert loaded_truth is not None
        assert loaded_truth.bug_ids == truth.bug_ids
        assert loaded_truth.occurrences == truth.occurrences

    def test_table_roundtrip(self, tmp_path):
        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports)
        loaded, truth = load_reports(str(path))
        assert truth is None
        assert loaded.table.n_predicates == reports.table.n_predicates
        assert [p.name for p in loaded.table.predicates] == [
            p.name for p in reports.table.predicates
        ]

    def test_real_scheme_tables_roundtrip(self, tmp_path):
        from repro.core.predicates import PredicateTable, Scheme
        from repro.core.reports import ReportBuilder

        table = PredicateTable()
        table.add_site(Scheme.BRANCHES, "f", 3, "x > 0")
        table.add_site(Scheme.RETURNS, "f", 4, "g")
        builder = ReportBuilder(table)
        builder.add_run(True, {0: 2, 1: 1}, {0: 2, 4: 1})
        reports = builder.build()
        path = tmp_path / "r.npz"
        save_reports(str(path), reports)
        loaded, _ = load_reports(str(path))
        assert loaded.table.sites[0].scheme is Scheme.BRANCHES
        assert loaded.table.predicates[0].name == "x > 0 is TRUE"
        assert loaded.site_counts[0, 0] == 2

    def test_version_check(self, tmp_path):
        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports)
        # Corrupt the version marker.
        import numpy as _np

        data = dict(_np.load(str(path), allow_pickle=False))
        data["format_version"] = _np.asarray([999])
        with open(path, "wb") as fh:
            _np.savez_compressed(fh, **data)
        with pytest.raises(ValueError):
            load_reports(str(path))
