"""Tests for report-archive persistence."""

import numpy as np
import pytest

from repro.core.io import load_reports, save_reports
from repro.core.scores import compute_scores
from repro.core.truth import GroundTruth

from tests.helpers import make_reports


def _population():
    stacks = [("main", "f", "Boom"), None, None]
    reports = make_reports(
        3,
        [
            (True, {0, 2}, None),
            (False, {1}, None),
            (False, set(), {0}),
        ],
        stacks=stacks,
    )
    truth = GroundTruth(bug_ids=["a", "b"])
    truth.add_run(["a"])
    truth.add_run([])
    truth.add_run([])
    return reports, truth


class TestRoundTrip:
    def test_exact_score_roundtrip(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        loaded, loaded_truth = load_reports(str(path))

        before = compute_scores(reports)
        after = compute_scores(loaded)
        np.testing.assert_array_equal(before.F, after.F)
        np.testing.assert_array_equal(before.S, after.S)
        np.testing.assert_allclose(before.increase, after.increase)
        assert loaded.failed.tolist() == reports.failed.tolist()

    def test_stacks_and_metas_roundtrip(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        loaded, _ = load_reports(str(path))
        assert loaded.stacks == reports.stacks

    def test_truth_roundtrip(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        _, loaded_truth = load_reports(str(path))
        assert loaded_truth is not None
        assert loaded_truth.bug_ids == truth.bug_ids
        assert loaded_truth.occurrences == truth.occurrences

    def test_table_roundtrip(self, tmp_path):
        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports)
        loaded, truth = load_reports(str(path))
        assert truth is None
        assert loaded.table.n_predicates == reports.table.n_predicates
        assert [p.name for p in loaded.table.predicates] == [
            p.name for p in reports.table.predicates
        ]

    def test_real_scheme_tables_roundtrip(self, tmp_path):
        from repro.core.predicates import PredicateTable, Scheme
        from repro.core.reports import ReportBuilder

        table = PredicateTable()
        table.add_site(Scheme.BRANCHES, "f", 3, "x > 0")
        table.add_site(Scheme.RETURNS, "f", 4, "g")
        builder = ReportBuilder(table)
        builder.add_run(True, {0: 2, 1: 1}, {0: 2, 4: 1})
        reports = builder.build()
        path = tmp_path / "r.npz"
        save_reports(str(path), reports)
        loaded, _ = load_reports(str(path))
        assert loaded.table.sites[0].scheme is Scheme.BRANCHES
        assert loaded.table.predicates[0].name == "x > 0 is TRUE"
        assert loaded.site_counts[0, 0] == 2

    def test_version_check(self, tmp_path):
        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, version=2)
        # Corrupt the version marker.
        import numpy as _np

        data = dict(_np.load(str(path), allow_pickle=False))
        data["format_version"] = _np.asarray([999])
        with open(path, "wb") as fh:
            _np.savez_compressed(fh, **data)
        with pytest.raises(ValueError):
            load_reports(str(path))


def _downgrade_to_v1(path):
    """Rewrite an archive in the version 1 layout (no stats, no table_sha)."""
    data = dict(np.load(str(path), allow_pickle=False))
    for key in list(data):
        if key.startswith("stats_") or key == "table_sha":
            del data[key]
    data["format_version"] = np.asarray([1])
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **data)


class TestFormatVersions:
    def test_writer_emits_current_version(self, tmp_path):
        from repro.core.io import FORMAT_VERSION, V3_MAGIC, load_shard_stats

        reports, _ = _population()
        path = tmp_path / "reports.v3"
        save_reports(str(path), reports)
        assert FORMAT_VERSION == 3
        with open(path, "rb") as fh:
            assert fh.read(len(V3_MAGIC)) == V3_MAGIC
        *_, table_sha = load_shard_stats(str(path))
        assert table_sha == reports.table.signature()

    def test_v2_writer_emits_legacy_npz(self, tmp_path):
        """``version=2`` must keep producing the exact legacy layout so
        append sessions to pre-v3 stores stay homogeneous."""
        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, version=2)
        with np.load(str(path), allow_pickle=False) as archive:
            assert int(archive["format_version"][0]) == 2
            assert str(archive["table_sha"]) == reports.table.signature()

    def test_unwritable_version_rejected(self, tmp_path):
        reports, _ = _population()
        with pytest.raises(ValueError, match="cannot write"):
            save_reports(str(tmp_path / "r"), reports, version=1)

    def test_v2_and_v3_archives_load_identically(self, tmp_path):
        reports, truth = _population()
        p2, p3 = tmp_path / "a.v2", tmp_path / "a.v3"
        save_reports(str(p2), reports, truth, version=2)
        save_reports(str(p3), reports, truth, version=3)
        r2, t2 = load_reports(str(p2))
        r3, t3 = load_reports(str(p3))
        assert r2.failed.tolist() == r3.failed.tolist()
        assert r2.stacks == r3.stacks and r2.metas == r3.metas
        assert t2.occurrences == t3.occurrences
        s2, s3 = compute_scores(r2), compute_scores(r3)
        np.testing.assert_array_equal(s2.F, s3.F)
        np.testing.assert_array_equal(s2.increase, s3.increase)

    def test_v3_bytes_are_deterministic(self, tmp_path):
        """Shard SHAs must be reproducible: same population, same bytes."""
        reports, truth = _population()
        p1, p2 = tmp_path / "d1", tmp_path / "d2"
        save_reports(str(p1), reports, truth)
        save_reports(str(p2), reports, truth)
        assert p1.read_bytes() == p2.read_bytes()

    def test_v3_stats_are_zero_copy_readonly(self, tmp_path):
        from repro.core.io import load_shard_stats

        reports, _ = _population()
        path = tmp_path / "r.v3"
        save_reports(str(path), reports)
        F, *_ = load_shard_stats(str(path))
        assert not F.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            F[0] = 99

    def test_v1_archive_still_loads(self, tmp_path):
        """Compatibility guarantee: archives in the pre-shard layout keep
        loading through the new reader."""
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth, version=2)
        _downgrade_to_v1(path)

        loaded, loaded_truth = load_reports(str(path))
        assert loaded.failed.tolist() == reports.failed.tolist()
        assert loaded.stacks == reports.stacks
        assert loaded_truth is not None
        assert loaded_truth.occurrences == truth.occurrences
        before, after = compute_scores(reports), compute_scores(loaded)
        np.testing.assert_array_equal(before.F, after.F)
        np.testing.assert_array_equal(before.S, after.S)

    def test_embedded_stats_match_recomputation(self, tmp_path):
        from repro.core.io import load_shard_stats
        from repro.core.scores import sufficient_counts

        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports)
        F, S, F_obs, S_obs, numf, nums, _ = load_shard_stats(str(path))
        eF, eS, eF_obs, eS_obs, enumf, enums = sufficient_counts(reports)
        np.testing.assert_array_equal(F, eF)
        np.testing.assert_array_equal(S, eS)
        np.testing.assert_array_equal(F_obs, eF_obs)
        np.testing.assert_array_equal(S_obs, eS_obs)
        assert (numf, nums) == (enumf, enums)


class TestShardStatsCorruption:
    """Every escape from ``load_shard_stats`` is a typed ``ArchiveError``.

    Regression for the v1 fallback: it used to re-read the archive via
    ``load_reports`` *outside* the corruption-translating ``try``, so a
    v1 archive damaged past the version stamp leaked raw numpy/zip/JSON
    exceptions to the streaming scorer."""

    def _v1_archive(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "v1.npz"
        save_reports(str(path), reports, truth, version=2)
        _downgrade_to_v1(path)
        return path

    def test_truncated_v1_archive_raises_typed_error(self, tmp_path):
        from repro.core.io import ArchiveError, load_shard_stats

        path = self._v1_archive(tmp_path)
        data = path.read_bytes()
        for cut in (len(data) // 4, len(data) // 2, len(data) - 7):
            bad = tmp_path / f"t{cut}.npz"
            bad.write_bytes(data[:cut])
            with pytest.raises(ArchiveError):
                load_shard_stats(str(bad))

    def test_flipped_bytes_in_v1_archive_raise_typed_error(self, tmp_path):
        from repro.core.io import ArchiveError, load_shard_stats

        path = self._v1_archive(tmp_path)
        data = bytearray(path.read_bytes())
        step = max(1, len(data) // 23)
        survived = 0
        for pos in range(40, len(data), step):
            bad = tmp_path / f"f{pos}.npz"
            flipped = bytearray(data)
            flipped[pos] ^= 0xFF
            bad.write_bytes(bytes(flipped))
            try:
                load_shard_stats(str(bad))
                survived += 1  # flip landed somewhere redundant: fine
            except ArchiveError:
                pass  # typed, as required; raw exceptions fail the test
        assert survived < 23  # at least one flip must actually be detected

    def test_garbage_bytes_raise_typed_error(self, tmp_path):
        from repro.core.io import ArchiveError, load_shard_stats

        for name, payload in [
            ("zipish", b"PK\x03\x04 not really a zip archive"),
            ("text", b"hello world, definitely not an archive"),
            ("empty", b""),
            ("magic-only", b"RPROSHD3"),
            ("magic-lying-header", b"RPROSHD3" + b"\xff" * 8),
        ]:
            path = tmp_path / name
            path.write_bytes(payload)
            with pytest.raises(ArchiveError):
                load_shard_stats(str(path))

    def test_truncated_v3_archive_raises_typed_error(self, tmp_path):
        from repro.core.io import ArchiveError, load_reports, load_shard_stats

        reports, truth = _population()
        path = tmp_path / "full.v3"
        save_reports(str(path), reports, truth)
        data = path.read_bytes()
        for cut in range(0, len(data), max(1, len(data) // 17)):
            bad = tmp_path / f"cut{cut}"
            bad.write_bytes(data[:cut])
            with pytest.raises(ArchiveError):
                load_shard_stats(str(bad))
            with pytest.raises(ArchiveError):
                load_reports(str(bad))


class TestMetaValidation:
    def test_non_json_meta_rejected_with_clear_message(self, tmp_path):
        """Regression: v1 silently stringified non-JSON metas via
        ``default=str``, so e.g. a Path loaded back as a str.  The writer
        must refuse instead."""
        from pathlib import Path

        from repro.core.reports import ReportBuilder
        from tests.helpers import make_table

        builder = ReportBuilder(make_table(2))
        builder.add_run(True, {0: 1}, {0: 1}, seed=1, source=Path("/tmp/x"))
        reports = builder.build()
        with pytest.raises(ValueError, match=r"run 0.*'source'.*PosixPath"):
            save_reports(str(tmp_path / "r.npz"), reports)

    def test_tuple_meta_rejected(self, tmp_path):
        """Tuples would come back as lists -- not an exact round trip."""
        from repro.core.reports import ReportBuilder
        from tests.helpers import make_table

        builder = ReportBuilder(make_table(2))
        builder.add_run(False, {0: 1}, {}, span=(3, 7))
        reports = builder.build()
        with pytest.raises(ValueError, match="tuple"):
            save_reports(str(tmp_path / "r.npz"), reports)

    def test_non_string_dict_key_rejected(self, tmp_path):
        from repro.core.reports import ReportBuilder
        from tests.helpers import make_table

        builder = ReportBuilder(make_table(2))
        builder.add_run(False, {0: 1}, {}, counts={1: "a"})
        reports = builder.build()
        with pytest.raises(ValueError, match="non-string key"):
            save_reports(str(tmp_path / "r.npz"), reports)

    def test_clean_nested_metas_round_trip_exactly(self, tmp_path):
        from repro.core.reports import ReportBuilder
        from tests.helpers import make_table

        meta = {
            "seed": 3,
            "tags": ["a", "b"],
            "nested": {"ratio": 0.5, "ok": True, "none": None},
        }
        builder = ReportBuilder(make_table(2))
        builder.add_run(True, {0: 1}, {0: 1}, **meta)
        reports = builder.build()
        path = tmp_path / "r.npz"
        save_reports(str(path), reports)
        loaded, _ = load_reports(str(path))
        assert loaded.metas == [meta]
        # Types, not just values, survive the round trip.
        assert type(loaded.metas[0]["seed"]) is int
        assert type(loaded.metas[0]["nested"]["ratio"]) is float
