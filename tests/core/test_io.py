"""Tests for report-archive persistence."""

import numpy as np
import pytest

from repro.core.io import load_reports, save_reports
from repro.core.scores import compute_scores
from repro.core.truth import GroundTruth

from tests.helpers import make_reports


def _population():
    stacks = [("main", "f", "Boom"), None, None]
    reports = make_reports(
        3,
        [
            (True, {0, 2}, None),
            (False, {1}, None),
            (False, set(), {0}),
        ],
        stacks=stacks,
    )
    truth = GroundTruth(bug_ids=["a", "b"])
    truth.add_run(["a"])
    truth.add_run([])
    truth.add_run([])
    return reports, truth


class TestRoundTrip:
    def test_exact_score_roundtrip(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        loaded, loaded_truth = load_reports(str(path))

        before = compute_scores(reports)
        after = compute_scores(loaded)
        np.testing.assert_array_equal(before.F, after.F)
        np.testing.assert_array_equal(before.S, after.S)
        np.testing.assert_allclose(before.increase, after.increase)
        assert loaded.failed.tolist() == reports.failed.tolist()

    def test_stacks_and_metas_roundtrip(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        loaded, _ = load_reports(str(path))
        assert loaded.stacks == reports.stacks

    def test_truth_roundtrip(self, tmp_path):
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        _, loaded_truth = load_reports(str(path))
        assert loaded_truth is not None
        assert loaded_truth.bug_ids == truth.bug_ids
        assert loaded_truth.occurrences == truth.occurrences

    def test_table_roundtrip(self, tmp_path):
        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports)
        loaded, truth = load_reports(str(path))
        assert truth is None
        assert loaded.table.n_predicates == reports.table.n_predicates
        assert [p.name for p in loaded.table.predicates] == [
            p.name for p in reports.table.predicates
        ]

    def test_real_scheme_tables_roundtrip(self, tmp_path):
        from repro.core.predicates import PredicateTable, Scheme
        from repro.core.reports import ReportBuilder

        table = PredicateTable()
        table.add_site(Scheme.BRANCHES, "f", 3, "x > 0")
        table.add_site(Scheme.RETURNS, "f", 4, "g")
        builder = ReportBuilder(table)
        builder.add_run(True, {0: 2, 1: 1}, {0: 2, 4: 1})
        reports = builder.build()
        path = tmp_path / "r.npz"
        save_reports(str(path), reports)
        loaded, _ = load_reports(str(path))
        assert loaded.table.sites[0].scheme is Scheme.BRANCHES
        assert loaded.table.predicates[0].name == "x > 0 is TRUE"
        assert loaded.site_counts[0, 0] == 2

    def test_version_check(self, tmp_path):
        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports)
        # Corrupt the version marker.
        import numpy as _np

        data = dict(_np.load(str(path), allow_pickle=False))
        data["format_version"] = _np.asarray([999])
        with open(path, "wb") as fh:
            _np.savez_compressed(fh, **data)
        with pytest.raises(ValueError):
            load_reports(str(path))


def _downgrade_to_v1(path):
    """Rewrite an archive in the version 1 layout (no stats, no table_sha)."""
    data = dict(np.load(str(path), allow_pickle=False))
    for key in list(data):
        if key.startswith("stats_") or key == "table_sha":
            del data[key]
    data["format_version"] = np.asarray([1])
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **data)


class TestFormatVersions:
    def test_writer_emits_current_version(self, tmp_path):
        from repro.core.io import FORMAT_VERSION

        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports)
        with np.load(str(path), allow_pickle=False) as archive:
            assert int(archive["format_version"][0]) == FORMAT_VERSION == 2
            assert str(archive["table_sha"]) == reports.table.signature()

    def test_v1_archive_still_loads(self, tmp_path):
        """Compatibility guarantee: archives in the pre-shard layout keep
        loading through the new reader."""
        reports, truth = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports, truth)
        _downgrade_to_v1(path)

        loaded, loaded_truth = load_reports(str(path))
        assert loaded.failed.tolist() == reports.failed.tolist()
        assert loaded.stacks == reports.stacks
        assert loaded_truth is not None
        assert loaded_truth.occurrences == truth.occurrences
        before, after = compute_scores(reports), compute_scores(loaded)
        np.testing.assert_array_equal(before.F, after.F)
        np.testing.assert_array_equal(before.S, after.S)

    def test_embedded_stats_match_recomputation(self, tmp_path):
        from repro.core.io import load_shard_stats
        from repro.core.scores import sufficient_counts

        reports, _ = _population()
        path = tmp_path / "reports.npz"
        save_reports(str(path), reports)
        F, S, F_obs, S_obs, numf, nums, _ = load_shard_stats(str(path))
        eF, eS, eF_obs, eS_obs, enumf, enums = sufficient_counts(reports)
        np.testing.assert_array_equal(F, eF)
        np.testing.assert_array_equal(S, eS)
        np.testing.assert_array_equal(F_obs, eF_obs)
        np.testing.assert_array_equal(S_obs, eS_obs)
        assert (numf, nums) == (enumf, enums)


class TestMetaValidation:
    def test_non_json_meta_rejected_with_clear_message(self, tmp_path):
        """Regression: v1 silently stringified non-JSON metas via
        ``default=str``, so e.g. a Path loaded back as a str.  The writer
        must refuse instead."""
        from pathlib import Path

        from repro.core.reports import ReportBuilder
        from tests.helpers import make_table

        builder = ReportBuilder(make_table(2))
        builder.add_run(True, {0: 1}, {0: 1}, seed=1, source=Path("/tmp/x"))
        reports = builder.build()
        with pytest.raises(ValueError, match=r"run 0.*'source'.*PosixPath"):
            save_reports(str(tmp_path / "r.npz"), reports)

    def test_tuple_meta_rejected(self, tmp_path):
        """Tuples would come back as lists -- not an exact round trip."""
        from repro.core.reports import ReportBuilder
        from tests.helpers import make_table

        builder = ReportBuilder(make_table(2))
        builder.add_run(False, {0: 1}, {}, span=(3, 7))
        reports = builder.build()
        with pytest.raises(ValueError, match="tuple"):
            save_reports(str(tmp_path / "r.npz"), reports)

    def test_non_string_dict_key_rejected(self, tmp_path):
        from repro.core.reports import ReportBuilder
        from tests.helpers import make_table

        builder = ReportBuilder(make_table(2))
        builder.add_run(False, {0: 1}, {}, counts={1: "a"})
        reports = builder.build()
        with pytest.raises(ValueError, match="non-string key"):
            save_reports(str(tmp_path / "r.npz"), reports)

    def test_clean_nested_metas_round_trip_exactly(self, tmp_path):
        from repro.core.reports import ReportBuilder
        from tests.helpers import make_table

        meta = {
            "seed": 3,
            "tags": ["a", "b"],
            "nested": {"ratio": 0.5, "ok": True, "none": None},
        }
        builder = ReportBuilder(make_table(2))
        builder.add_run(True, {0: 1}, {0: 1}, **meta)
        reports = builder.build()
        path = tmp_path / "r.npz"
        save_reports(str(path), reports)
        loaded, _ = load_reports(str(path))
        assert loaded.metas == [meta]
        # Types, not just values, survive the round trip.
        assert type(loaded.metas[0]["seed"]) is int
        assert type(loaded.metas[0]["nested"]["ratio"]) is float
