"""Tests for the site/predicate registry."""

import pytest

from repro.core.predicates import (
    SCHEME_KINDS,
    Predicate,
    PredicateKind,
    PredicateTable,
    Scheme,
)


class TestRegistration:
    def test_branch_site_has_two_predicates(self):
        table = PredicateTable()
        site = table.add_site(Scheme.BRANCHES, "f", 3, "x > 0")
        assert table.n_sites == 1
        preds = table.predicates_at(site.index)
        assert [p.kind for p in preds] == [
            PredicateKind.BRANCH_TRUE,
            PredicateKind.BRANCH_FALSE,
        ]
        assert preds[0].name == "x > 0 is TRUE"
        assert preds[1].name == "x > 0 is FALSE"

    def test_returns_site_has_six_sign_predicates(self):
        table = PredicateTable()
        site = table.add_site(Scheme.RETURNS, "f", 9, "strcmp")
        names = [p.name for p in table.predicates_at(site.index)]
        assert names == [
            "strcmp < 0",
            "strcmp == 0",
            "strcmp > 0",
            "strcmp >= 0",
            "strcmp != 0",
            "strcmp <= 0",
        ]

    def test_scalar_pair_names_splice_operator(self):
        table = PredicateTable()
        site = table.add_site(Scheme.SCALAR_PAIRS, "f", 2, "filesindex __ 25")
        names = [p.name for p in table.predicates_at(site.index)]
        assert "filesindex < 25" in names
        assert "filesindex >= 25" in names
        assert len(names) == 6

    def test_indices_are_dense_and_contiguous_per_site(self):
        table = PredicateTable()
        table.add_site(Scheme.BRANCHES, "f", 1, "a")
        site = table.add_site(Scheme.RETURNS, "f", 2, "g")
        indices = table.predicate_indices_at(site.index)
        assert indices == list(range(2, 8))

    def test_custom_site_arbitrary_family(self):
        table = PredicateTable()
        site = table.add_custom_site("f", 1, "heap", ["heap ok", "heap corrupt"])
        assert [p.name for p in table.predicates_at(site.index)] == [
            "heap ok",
            "heap corrupt",
        ]

    def test_explicit_names_must_match_family_size(self):
        table = PredicateTable()
        with pytest.raises(ValueError):
            table.add_site(Scheme.BRANCHES, "f", 1, "x", predicate_names=["only one"])


class TestComplement:
    @pytest.mark.parametrize("scheme", [Scheme.RETURNS, Scheme.SCALAR_PAIRS])
    def test_sign_complements_are_involutions(self, scheme):
        table = PredicateTable()
        site = table.add_site(scheme, "f", 1, "v __ w" if scheme is Scheme.SCALAR_PAIRS else "v")
        for pred in table.predicates_at(site.index):
            comp = table.complement(pred.index)
            assert comp is not None
            assert table.complement(comp) == pred.index
            assert comp != pred.index

    def test_branch_complement_pairs_true_false(self):
        table = PredicateTable()
        site = table.add_site(Scheme.BRANCHES, "f", 1, "c")
        t, f = table.predicate_indices_at(site.index)
        assert table.complement(t) == f
        assert table.complement(f) == t

    def test_custom_predicates_have_no_complement(self):
        table = PredicateTable()
        site = table.add_custom_site("f", 1, "x", ["only"])
        assert table.complement(site.index) is None


class TestLookup:
    def test_site_of_maps_predicates_to_owners(self):
        table = PredicateTable()
        s1 = table.add_site(Scheme.BRANCHES, "f", 1, "a")
        s2 = table.add_site(Scheme.BRANCHES, "g", 2, "b")
        assert table.site_of(0) == s1
        assert table.site_of(3) == s2

    def test_find_matches_name_fragments(self):
        table = PredicateTable()
        table.add_site(Scheme.BRANCHES, "f", 1, "token_index > 500")
        hits = table.find("token_index")
        assert len(hits) == 2

    def test_len_counts_predicates(self):
        table = PredicateTable()
        table.add_site(Scheme.RETURNS, "f", 1, "g")
        assert len(table) == 6
