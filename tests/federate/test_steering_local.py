"""Steering artifacts are store-local: federation must never move them.

A steering document describes one daemon's live fit over its own
committed population; replicated into another store it would be a lie
about that store's evidence.  Two layers enforce this:

* ``plan_sync`` refuses outright any source manifest that *lists* a
  store-local file (a structurally broken manifest, not a skippable
  entry);
* a real federation of a steered store's directory copies only shard
  archives -- ``steering.json``, ``steering_log.jsonl`` and the ingest
  WAL stay behind even though they sit right next to the shards.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.federate import FederationError, LocalSource, federate_stores
from repro.federate.merge import plan_sync
from repro.serve.steering import STORE_LOCAL_FILES
from repro.store import ShardStore
from repro.store.manifest import ShardEntry

from tests.conftest import build_synthetic_store


@pytest.fixture()
def steered_store(tmp_path):
    """A store that looks like a steering daemon's directory: committed
    shards plus the three store-local files."""
    store, _ = build_synthetic_store(
        str(tmp_path / "steered"), k=3, n_runs=24, n_preds=4, seed=5
    )
    for name in sorted(STORE_LOCAL_FILES):
        with open(os.path.join(store.directory, name), "w", encoding="utf-8") as f:
            f.write("{}\n")
    return store


@pytest.mark.parametrize("name", sorted(STORE_LOCAL_FILES))
def test_plan_sync_refuses_manifest_listing_store_local_file(
    tmp_path, steered_store, name
):
    dest = ShardStore.create_like(str(tmp_path / "dest"), steered_store.manifest)
    poisoned = steered_store.manifest
    poisoned.shards.append(
        ShardEntry(filename=name, n_runs=1, num_failing=0, seed_start=10_000)
    )
    source = LocalSource(steered_store.directory)
    with pytest.raises(FederationError) as excinfo:
        plan_sync(dest.manifest, [(source, poisoned)])
    assert name in str(excinfo.value)
    assert "never replicated" in str(excinfo.value)


def test_federation_leaves_steering_files_behind(tmp_path, steered_store):
    dest = ShardStore.create_like(str(tmp_path / "dest"), steered_store.manifest)
    report = federate_stores([LocalSource(steered_store.directory)], dest)
    assert report.clean
    assert len(report.pulled) == steered_store.n_shards

    merged = ShardStore.open(dest.directory)
    assert merged.n_runs == steered_store.n_runs
    dest_files = set(os.listdir(dest.directory))
    assert not dest_files & STORE_LOCAL_FILES
    # ... while the source, of course, still has all three.
    assert STORE_LOCAL_FILES <= set(os.listdir(steered_store.directory))
