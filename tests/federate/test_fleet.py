"""Federation fleet smoke: real daemon subprocesses, spooling clients,
a SIGKILL mid-ingest, and a CLI federate that must reproduce the serial
baseline bit for bit.

This is the CI ``federation-smoke`` scenario: three ``repro-cbi serve``
daemons own disjoint thirds of a 120-run ccrypt population; a dozen
spooling submit clients drain into them; daemon 1 takes a kill -9 with
acknowledged-but-uncommitted reports in its WAL and restarts; then
``repro-cbi federate`` merges the three stores and the result is
compared -- shard digests and streamed statistics -- against a serial
single-store collection over the same seeds.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import numpy as np
import pytest

from repro.core.engine import AnalysisEngine
from repro.harness.parallel import run_trials_sharded
from repro.instrument.sampling import SamplingPlan
from repro.store import ShardStore
from repro.subjects.ccrypt import CcryptSubject

pytestmark = pytest.mark.slow

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: Three daemons, disjoint 40-seed thirds, shard boundaries every 20.
RANGES = [(0, 40), (40, 80), (80, 120)]
BATCH_RUNS = 20


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return env


def _cli(*argv):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _start_daemon(store_dir, *extra):
    process = _cli(
        "serve", str(store_dir), "--port", "0", "--batch-runs",
        str(BATCH_RUNS), "--sampling", "full", *extra,
    )
    line = process.stdout.readline().strip()
    assert line.startswith("serving ccrypt on http://"), line
    url = line.split(" on ", 1)[1].split(" ", 1)[0]
    return process, url


def _submit(url, spool_dir, seed, runs):
    return _cli(
        "submit", "--subject", "ccrypt", "--url", url,
        "--runs", str(runs), "--seed", str(seed),
        "--spool", str(spool_dir), "--batch-size", "10",
        "--sampling", "full",
    )


def _await(clients, timeout=240):
    for client in clients:
        out, err = client.communicate(timeout=timeout)
        assert client.returncode == 0, err
        assert "0 rejected" in out, out


def _healthz(url):
    with urllib.request.urlopen(url + "/healthz", timeout=5.0) as response:
        return json.loads(response.read())


def _stop(process):
    process.send_signal(signal.SIGTERM)
    out, err = process.communicate(timeout=60)
    assert process.returncode == 0, err


def test_federation_fleet_smoke(tmp_path):
    stores = [tmp_path / f"daemon-{i}" for i in range(3)]
    daemons = []
    try:
        for i, store_dir in enumerate(stores):
            daemons.append(_start_daemon(store_dir, "--subject", "ccrypt"))

        # Daemons 0 and 2: two concurrent 20-seed clients each.
        clients = []
        for daemon_index in (0, 2):
            _, url = daemons[daemon_index]
            lo, _ = RANGES[daemon_index]
            for j in range(2):
                clients.append(
                    _submit(url, tmp_path / f"spool-{daemon_index}-{j}",
                            lo + 20 * j, 20)
                )
        # Daemon 1: first 10 seeds land as an acknowledged half-batch.
        _, url1 = daemons[1]
        clients.append(_submit(url1, tmp_path / "spool-1-0", 40, 10))
        _await(clients)
        assert _healthz(url1)["queue_depth"] == 10

        # Kill -9 daemon 1 with those 10 reports living only in its WAL.
        process1, _ = daemons[1]
        process1.send_signal(signal.SIGKILL)
        process1.wait(timeout=30)

        # Restart over the same store (subject pinned by the manifest);
        # the WAL replay restores the acknowledged tail, and the
        # remaining clients complete the daemon's seed range.
        daemons[1] = _start_daemon(stores[1])
        _, url1 = daemons[1]
        assert _healthz(url1)["queue_depth"] == 10
        _await([
            _submit(url1, tmp_path / f"spool-1-{j}", 40 + 10 * j, 10)
            for j in range(1, 4)
        ])

        for i, (process, url) in enumerate(daemons):
            lo, hi = RANGES[i]
            deadline = time.time() + 60
            while _healthz(url)["n_runs"] < hi - lo and time.time() < deadline:
                time.sleep(0.2)
            _stop(process)
            daemons[i] = None
    finally:
        for daemon in daemons:
            if daemon and daemon[0].poll() is None:
                daemon[0].kill()
                daemon[0].wait(timeout=30)

    # Every daemon store must have committed its whole range, cleanly.
    for (lo, hi), store_dir in zip(RANGES, stores):
        store = ShardStore.open(str(store_dir))
        assert store.n_runs == hi - lo
        assert store.recover() == ([], [])
        assert store.audit().clean

    # The tentpole: `repro-cbi federate SRC... DEST` merges the fleet.
    dest_dir = tmp_path / "merged"
    federate = _cli("federate", *map(str, stores), str(dest_dir))
    out, err = federate.communicate(timeout=120)
    assert federate.returncode == 0, err
    assert "6 shards pulled (120 runs" in out, out
    assert "0 skipped" in out
    assert out.count("fully replicated") == 3

    # Bitwise differential against a serial single-store collection.
    subject = CcryptSubject()
    serial = run_trials_sharded(
        subject, 120, SamplingPlan.full(), str(tmp_path / "serial"),
        seed=0, jobs=2, chunk_size=BATCH_RUNS,
    )
    merged = ShardStore.open(str(dest_dir))
    assert [
        (e.filename, e.seed_start, e.n_runs, e.sha256)
        for e in merged.manifest.shards
    ] == [
        (e.filename, e.seed_start, e.n_runs, e.sha256)
        for e in serial.manifest.shards
    ]
    engine = AnalysisEngine(jobs=2)
    a = engine.store_stats(serial)
    b = engine.store_stats(merged)
    np.testing.assert_array_equal(a.F, b.F)
    np.testing.assert_array_equal(a.S, b.S)
    np.testing.assert_array_equal(a.F_obs, b.F_obs)
    np.testing.assert_array_equal(a.S_obs, b.S_obs)
    assert (a.num_failing, a.num_successful) == (b.num_failing, b.num_successful)
    assert merged.audit().clean
