"""Fleet-scale differential acceptance matrix.

Every cell of {2, 3, 5 daemons} x {clean, kill+restart, net-fault} x
{v2, v3 archives} runs real spooling clients against real in-process
daemons over disjoint seed ranges, federates the daemon stores into one,
and asserts the merged store is *bitwise* equal -- shard digests, raw
bytes, statistics, every scores column -- to a single daemon ingesting
the identical 120 reports alone.  This is the paper's fleet story made
falsifiable: sharding ingestion across machines (and crashing some of
them) must be invisible in the analysis.
"""

import os
import shutil

import numpy as np
import pytest

from repro.core.engine import AnalysisEngine
from repro.federate import LocalSource, cross_audit, federate_stores
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.serve import FeedbackServer, ReportSpool, drain_spool, run_and_spool
from repro.serve.client import SPOOL_PATTERN
from repro.serve.server import CollectionService
from repro.store import ShardStore
from repro.store.faults import Fault, FaultInjector

from tests.federate.conftest import assert_federated_equals_baseline
from tests.harness.test_runner import TinySubject

pytestmark = pytest.mark.slow

#: Total runs per cell; every daemon range is a multiple of BATCH_RUNS,
#: so daemon shard boundaries coincide with the single-daemon baseline.
TOTAL_RUNS = 120
BATCH_RUNS = 20

#: Daemon seed ranges per fleet size (half-open, batch-aligned).
RANGES = {
    2: [(0, 60), (60, 120)],
    3: [(0, 40), (40, 80), (80, 120)],
    5: [(0, 40), (40, 60), (60, 80), (80, 100), (100, 120)],
}

#: Deterministic fast retries for every drain in the matrix.
FAST_RETRY = dict(backoff_base=0.01, backoff_cap=0.05, jitter=0.0)


@pytest.fixture(scope="module")
def tiny():
    subject = TinySubject()
    program = instrument_source(subject.source(), subject.name)
    return subject, program, SamplingPlan.full()


@pytest.fixture(scope="module")
def wire_spool(tiny, tmp_path_factory):
    """All 120 wire reports, spooled once and copied per cell."""
    subject, program, plan = tiny
    spool = ReportSpool(str(tmp_path_factory.mktemp("wire") / "spool"))
    run_and_spool(subject, program, plan, spool, TOTAL_RUNS, seed=0)
    return spool


def _spool_subset(parent, source_spool, lo, hi):
    """A fresh spool holding copies of the reports for seeds [lo, hi)."""
    spool = ReportSpool(str(parent))
    for seed in range(lo, hi):
        name = SPOOL_PATTERN.format(seed=seed)
        shutil.copy(
            os.path.join(source_spool.directory, name),
            os.path.join(spool.directory, name),
        )
    return spool


def _make_daemon(directory, tiny, version, faults=None):
    """A live daemon over a fresh store pinned to ``version`` archives."""
    subject, program, plan = tiny
    store = ShardStore.create(
        str(directory), subject.name, program.table, plan, format_version=version
    )
    service = CollectionService(store, subject, batch_runs=BATCH_RUNS)
    server = FeedbackServer(service, faults=faults).start()
    return store, service, server


def _drain(spool, server, tiny, **kwargs):
    subject, program, _ = tiny
    return drain_spool(
        spool,
        server.url,
        subject.name,
        program.table.signature(),
        batch_size=10,
        **FAST_RETRY,
        **kwargs,
    )


@pytest.fixture(scope="module", params=[2, 3])
def _version(request):
    return request.param


@pytest.fixture(scope="module")
def baseline(tiny, wire_spool, tmp_path_factory, _version):
    """A single daemon ingesting all 120 reports -- the ground truth."""
    root = tmp_path_factory.mktemp(f"baseline-v{_version}")
    store, service, server = _make_daemon(root / "store", tiny, _version)
    spool = _spool_subset(root / "spool", wire_spool, 0, TOTAL_RUNS)
    result = _drain(spool, server, tiny)
    assert len(result.accepted) == TOTAL_RUNS
    server.close(drain=True)
    assert store.n_shards == TOTAL_RUNS // BATCH_RUNS
    return ShardStore.open(store.directory)


def _kill_and_restart(index, store, service, server, spool, tiny):
    """SIGKILL-equivalent on daemon ``index``: drop the socket and the
    in-memory service mid-drain, then recover from disk (WAL replay)."""
    _drain(spool, server, tiny, max_batches=2)
    server._http.shutdown()
    server._http.server_close()

    reopened = ShardStore.open(store.directory)
    service = CollectionService(reopened, tiny[0], batch_runs=BATCH_RUNS)
    server = FeedbackServer(service).start()
    return reopened, service, server


SCENARIOS = ["clean", "kill-restart", "net-fault"]


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("n_daemons", sorted(RANGES))
class TestFleetMatrix:
    def test_federated_fleet_equals_single_daemon(
        self, tmp_path, tiny, wire_spool, baseline, _version, n_daemons, scenario
    ):
        daemons = []
        for i, (lo, hi) in enumerate(RANGES[n_daemons]):
            server_faults = None
            if scenario == "net-fault" and i == 0:
                server_faults = FaultInjector(
                    (
                        Fault("net-500", chunk=1),
                        Fault("net-disconnect", chunk=3),
                        Fault("net-slow", chunk=5),
                    )
                )
            store, service, server = _make_daemon(
                tmp_path / f"daemon-{i}", tiny, _version, faults=server_faults
            )
            spool = _spool_subset(tmp_path / f"spool-{i}", wire_spool, lo, hi)
            daemons.append([store, service, server, spool, (lo, hi)])

        for i, daemon in enumerate(daemons):
            store, service, server, spool, (lo, hi) = daemon
            client_faults = None
            if scenario == "kill-restart" and i == 0:
                store, service, server = _kill_and_restart(
                    i, store, service, server, spool, tiny
                )
                daemon[0], daemon[1], daemon[2] = store, service, server
            if scenario == "net-fault" and i == 0:
                client_faults = FaultInjector((Fault("net-refuse", chunk=0),))
            result = _drain(spool, server, tiny, faults=client_faults)
            assert not result.rejected
            assert spool.pending_seeds() == []

        stores = []
        for store, service, server, spool, (lo, hi) in daemons:
            server.close(drain=True)
            reopened = ShardStore.open(store.directory)
            assert reopened.n_runs == hi - lo
            assert reopened.audit().clean
            stores.append(reopened)

        # Federate the fleet and compare against the lone daemon.
        dest = ShardStore.create_like(
            str(tmp_path / "merged"), stores[0].manifest
        )
        sources = [LocalSource(s.directory) for s in stores]
        report = federate_stores(sources, dest)
        assert report.clean
        assert report.runs_merged == TOTAL_RUNS
        assert dest.shard_format_version == _version
        assert_federated_equals_baseline(dest, baseline)
        assert cross_audit(dest, sources).clean

        # And the merge-free analysis path agrees too: summing the
        # daemon stores in place is the same population.
        engine = AnalysisEngine(jobs=2)
        merged = engine.multi_store_stats(stores)
        direct = engine.store_stats(baseline)
        np.testing.assert_array_equal(merged.F, direct.F)
        np.testing.assert_array_equal(merged.S, direct.S)
        np.testing.assert_array_equal(merged.F_obs, direct.F_obs)
        np.testing.assert_array_equal(merged.S_obs, direct.S_obs)
        assert merged.num_failing == direct.num_failing
        assert merged.num_successful == direct.num_successful


class TestBaselineSanity:
    def test_baseline_matches_serial_collection(
        self, tmp_path, tiny, baseline, _version
    ):
        """The networked baseline is itself the serial collection."""
        from repro.harness.parallel import run_trials_sharded

        subject, program, plan = tiny
        serial_dir = tmp_path / "serial"
        store = ShardStore.create(
            str(serial_dir), subject.name, program.table, plan,
            format_version=_version,
        )
        del store
        serial = run_trials_sharded(
            subject, TOTAL_RUNS, plan, str(serial_dir), seed=0, jobs=2,
            chunk_size=BATCH_RUNS,
        )
        assert [
            (e.filename, e.sha256) for e in serial.manifest.shards
        ] == [(e.filename, e.sha256) for e in baseline.manifest.shards]
