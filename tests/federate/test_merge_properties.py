"""Property-based federation laws: order-insensitivity, idempotence,
associativity.

Hypothesis drives arbitrary partitions of a fixed 8-shard population
across fleets of stores, arbitrary source orderings, and arbitrary
merge groupings; the merged manifest must always be byte-identical.
These are the algebraic laws that make coordinator-less federation
safe: any daemon topology, any sync schedule, same store.
"""

import json
import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federate import LocalSource, federate_stores
from repro.store import ShardStore

from tests.conftest import build_synthetic_store
from tests.federate.conftest import distribute, read_shard, shard_essence

pytestmark = pytest.mark.property

N_SHARDS = 8

#: An assignment of each of the 8 shards to one of up to 4 stores.
partitions = st.lists(
    st.integers(min_value=0, max_value=3), min_size=N_SHARDS, max_size=N_SHARDS
)

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def population_store():
    """One 8-shard baseline store shared by every example."""
    root = tempfile.mkdtemp(prefix="fed-prop-")
    store, _ = build_synthetic_store(
        os.path.join(root, "baseline"), k=N_SHARDS, n_runs=64, n_preds=5, seed=3
    )
    yield store
    shutil.rmtree(root, ignore_errors=True)


def _manifest_bytes(store):
    with open(store.manifest_path, "rb") as handle:
        return handle.read()


def _fleet(root, baseline, assignment):
    """Stores for the partition's non-empty groups, in group order."""
    groups = sorted(set(assignment))
    directories = [os.path.join(root, f"s{g}") for g in groups]
    return distribute(
        baseline, directories, assign=lambda i: groups.index(assignment[i])
    )


def _federate(root, baseline, stores, name="dest"):
    dest = ShardStore.create_like(os.path.join(root, name), baseline.manifest)
    report = federate_stores(
        [LocalSource(s.directory) for s in stores], dest, backoff_base=0.0
    )
    assert report.clean
    return ShardStore.open(dest.directory)


class TestFederationLaws:
    @SETTINGS
    @given(assignment=partitions)
    def test_any_partition_reproduces_the_baseline(
        self, population_store, assignment
    ):
        """Merging ANY split of the shards rebuilds the one true store."""
        root = tempfile.mkdtemp(prefix="fed-part-")
        try:
            fleet = _fleet(root, population_store, assignment)
            dest = _federate(root, population_store, fleet)
            assert shard_essence(dest) == shard_essence(population_store)
            for entry in population_store.manifest.shards:
                assert read_shard(dest, entry.filename) == read_shard(
                    population_store, entry.filename
                )
        finally:
            shutil.rmtree(root, ignore_errors=True)

    @SETTINGS
    @given(assignment=partitions, order=st.permutations(list(range(4))))
    def test_order_insensitive(self, population_store, assignment, order):
        """Permuting the source list changes nothing, byte for byte."""
        root = tempfile.mkdtemp(prefix="fed-order-")
        try:
            fleet = _fleet(root, population_store, assignment)
            permuted = [fleet[i % len(fleet)] for i in order]
            a = _federate(root, population_store, fleet, "dest-a")
            b = _federate(root, population_store, permuted, "dest-b")
            assert _manifest_bytes(a) == _manifest_bytes(b)
        finally:
            shutil.rmtree(root, ignore_errors=True)

    @SETTINGS
    @given(assignment=partitions)
    def test_idempotent(self, population_store, assignment):
        """A second pass over the same fleet is a no-op."""
        root = tempfile.mkdtemp(prefix="fed-idem-")
        try:
            fleet = _fleet(root, population_store, assignment)
            dest = _federate(root, population_store, fleet)
            before = _manifest_bytes(dest)
            log_before = len(dest.read_log())
            again = federate_stores(
                [LocalSource(s.directory) for s in fleet], dest
            )
            assert not again.pulled and not again.skipped
            assert len(again.present) == N_SHARDS
            assert _manifest_bytes(dest) == before
            # Only the summary event was appended -- no commits, no skips.
            events = [r["event"] for r in dest.read_log()[log_before:]]
            assert events == ["federate"]
        finally:
            shutil.rmtree(root, ignore_errors=True)

    @SETTINGS
    @given(
        assignment=partitions,
        split=st.integers(min_value=0, max_value=3),
    )
    def test_associative(self, population_store, assignment, split):
        """((A ∪ B) ∪ C) == (A ∪ (B ∪ C)) == (A ∪ B ∪ C), as bytes.

        Group the fleet two different ways, federate group-by-group into
        separate destinations, and compare against the all-at-once merge.
        """
        root = tempfile.mkdtemp(prefix="fed-assoc-")
        try:
            fleet = _fleet(root, population_store, assignment)
            cut = split % (len(fleet) + 1)
            left, right = fleet[:cut], fleet[cut:]

            flat = _federate(root, population_store, fleet, "flat")

            staged = ShardStore.create_like(
                os.path.join(root, "staged"), population_store.manifest
            )
            for group in (left, right):
                if group:
                    federate_stores(
                        [LocalSource(s.directory) for s in group], staged
                    )
                    staged = ShardStore.open(staged.directory)

            reversed_staged = ShardStore.create_like(
                os.path.join(root, "staged-rev"), population_store.manifest
            )
            for group in (right, left):
                if group:
                    federate_stores(
                        [LocalSource(s.directory) for s in group],
                        reversed_staged,
                    )
                    reversed_staged = ShardStore.open(reversed_staged.directory)

            assert _manifest_bytes(staged) == _manifest_bytes(flat)
            assert _manifest_bytes(reversed_staged) == _manifest_bytes(flat)
            assert shard_essence(flat) == shard_essence(population_store)
        finally:
            shutil.rmtree(root, ignore_errors=True)


def test_partition_strategy_exercises_multiple_stores():
    """Meta-check: the strategy space includes genuine multi-store fleets."""
    example = [0, 1, 2, 3, 0, 1, 2, 3]
    assert len(set(example)) == 4
    assert json.dumps(example)  # trivially serialisable, documents the shape
