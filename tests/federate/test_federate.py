"""Federation core tests: plan, merge, dedup, provenance, faults, CLI,
and the daemon's federation endpoints.

The pinned property throughout: a store federated from N sources is
*bit-identical* -- shard bytes, manifest membership, statistics, scores
-- to the single store a lone daemon would have collected over the same
seeds.
"""

import dataclasses
import json
import os
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.federate import (
    FederationError,
    FederationFetchError,
    HTTPSource,
    LocalSource,
    MANIFEST_SCHEMA,
    cross_audit,
    federate_stores,
    open_source,
    plan_sync,
)
from repro.store import ShardIntegrityError, ShardStore
from repro.store.faults import Fault, FaultInjector
from repro.store.manifest import ShardEntry, ShardManifest

from tests.conftest import build_synthetic_store
from tests.federate.conftest import (
    assert_federated_equals_baseline,
    distribute,
    read_shard,
    shard_essence,
)

#: Retry timing for fault tests: fast, deterministic.
FAST = dict(backoff_base=0.001, backoff_cap=0.002)


def _federate_fleet(tmp_path, baseline, n_stores, **kwargs):
    fleet = distribute(
        baseline, [tmp_path / f"fleet-{i}" for i in range(n_stores)]
    )
    dest = ShardStore.create_like(str(tmp_path / "dest"), baseline.manifest)
    sources = [LocalSource(s.directory) for s in fleet]
    report = federate_stores(sources, dest, **kwargs)
    return fleet, sources, dest, report


class TestFederateEqualsSingleStore:
    @pytest.mark.parametrize("n_stores", [1, 2, 3, 5])
    def test_bit_identical_to_baseline(self, tmp_path, baseline_store, n_stores):
        _, _, dest, report = _federate_fleet(tmp_path, baseline_store, n_stores)
        assert report.clean
        assert len(report.pulled) == baseline_store.n_shards
        assert report.runs_merged == baseline_store.n_runs
        assert_federated_equals_baseline(dest, baseline_store)

    def test_dest_audit_clean_after_merge(self, tmp_path, baseline_store):
        _, sources, dest, _ = _federate_fleet(tmp_path, baseline_store, 3)
        audit = cross_audit(dest, sources)
        assert audit.clean
        assert all(not a.missing and not a.diverged for a in audit.sources)
        assert sum(len(a.replicated) for a in audit.sources) == dest.n_shards

    def test_idempotent_second_pass(self, tmp_path, baseline_store):
        _, sources, dest, _ = _federate_fleet(tmp_path, baseline_store, 3)
        before = json.load(open(os.path.join(dest.directory, "manifest.json")))
        again = federate_stores(sources, ShardStore.open(dest.directory))
        assert not again.pulled
        assert sorted(again.present) == sorted(
            e.filename for e in baseline_store.manifest.shards
        )
        after = json.load(open(os.path.join(dest.directory, "manifest.json")))
        assert before == after

    def test_incremental_federation(self, tmp_path, baseline_store):
        """Federating source-by-source lands in the same place."""
        fleet = distribute(
            baseline_store, [tmp_path / f"f{i}" for i in range(3)]
        )
        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        for store in fleet:
            federate_stores([LocalSource(store.directory)], dest)
            dest = ShardStore.open(dest.directory)
        assert_federated_equals_baseline(dest, baseline_store, jobs=(1,))

    def test_provenance_recorded_and_round_trips(self, tmp_path, baseline_store):
        _, sources, dest, _ = _federate_fleet(tmp_path, baseline_store, 2)
        labels = {s.label for s in sources}
        for entry in dest.manifest.shards:
            assert entry.source in labels
        reloaded = ShardStore.open(dest.directory)
        assert [e.source for e in reloaded.manifest.shards] == [
            e.source for e in dest.manifest.shards
        ]
        # Local shards keep the old manifest shape: no source key at all.
        for entry in baseline_store.manifest.shards:
            assert "source" not in entry.to_json()


class TestDedup:
    def test_duplicate_shards_deduped_deterministically(
        self, tmp_path, baseline_store
    ):
        # Both sources hold every shard; labels decide the winner.
        fleet = distribute(baseline_store, [tmp_path / "a-src"])
        fleet += distribute(baseline_store, [tmp_path / "b-src"])
        sources = [LocalSource(s.directory) for s in fleet]
        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        report = federate_stores(sources, dest)
        assert len(report.pulled) == baseline_store.n_shards
        assert len(report.deduped) == baseline_store.n_shards
        assert {label for _, label in report.deduped} == {sources[1].label}
        # Every pull came from the smaller label.
        assert {e.source for e in dest.manifest.shards} == {sources[0].label}
        assert_federated_equals_baseline(dest, baseline_store, jobs=(1,))

    def test_plan_is_order_insensitive(self, tmp_path, baseline_store):
        fleet = distribute(
            baseline_store, [tmp_path / f"f{i}" for i in range(3)]
        )
        dest_manifest = dataclasses.replace(baseline_store.manifest, shards=[])
        pairs = [
            (LocalSource(s.directory), s.manifest) for s in fleet
        ]
        forward = plan_sync(dest_manifest, pairs)
        backward = plan_sync(dest_manifest, list(reversed(pairs)))
        key = lambda plan: [
            (i.entry.filename, [s.label for s in i.sources]) for i in plan.pulls
        ]
        assert key(forward) == key(backward)
        assert forward.duplicates == backward.duplicates


class TestSeedDisjointness:
    def _entry(self, filename, seed_start, n_runs, sha="0" * 64):
        return ShardEntry(
            filename=filename, n_runs=n_runs, num_failing=1,
            seed_start=seed_start, sha256=sha,
        )

    def _manifest_like(self, store, entries):
        return dataclasses.replace(store.manifest, shards=entries)

    class _FakeSource:
        def __init__(self, label, manifest):
            self.label = label
            self._manifest = manifest

        def manifest(self):
            return self._manifest

    def test_partial_overlap_rejected(self, baseline_store):
        a = self._manifest_like(
            baseline_store, [self._entry("x.npz", 0, 10)]
        )
        b = self._manifest_like(
            baseline_store, [self._entry("y.npz", 5, 10, sha="1" * 64)]
        )
        dest = self._manifest_like(baseline_store, [])
        with pytest.raises(FederationError, match="double-count"):
            plan_sync(
                dest,
                [(self._FakeSource("a", a), a), (self._FakeSource("b", b), b)],
            )

    def test_same_range_different_content_rejected(self, baseline_store):
        a = self._manifest_like(baseline_store, [self._entry("x.npz", 0, 10)])
        b = self._manifest_like(
            baseline_store, [self._entry("x.npz", 0, 10, sha="f" * 64)]
        )
        dest = self._manifest_like(baseline_store, [])
        with pytest.raises(FederationError, match="different content"):
            plan_sync(
                dest,
                [(self._FakeSource("a", a), a), (self._FakeSource("b", b), b)],
            )

    def test_same_range_unknown_sha_rejected(self, baseline_store):
        # Without digests there is no proof the copies agree.
        a = self._manifest_like(
            baseline_store, [self._entry("x.npz", 0, 10, sha=None)]
        )
        dest = self._manifest_like(baseline_store, [])
        with pytest.raises(FederationError, match="different content"):
            plan_sync(
                dest,
                [
                    (self._FakeSource("a", a), a),
                    (self._FakeSource("b", a), a),
                ],
            )

    def test_unseeded_entry_rejected(self, baseline_store):
        a = self._manifest_like(
            baseline_store,
            [ShardEntry(filename="x.npz", n_runs=10, num_failing=2)],
        )
        dest = self._manifest_like(baseline_store, [])
        with pytest.raises(FederationError, match="seed provenance"):
            plan_sync(dest, [(self._FakeSource("a", a), a)])

    def test_overlap_with_destination_rejected(self, tmp_path, baseline_store):
        fleet = distribute(baseline_store, [tmp_path / "src"])
        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        first = baseline_store.manifest.shards[0]
        shifted = dataclasses.replace(
            first,
            filename="shard-offset.npz",
            seed_start=first.seed_start + 1,
        )
        dest.ingest_shard_bytes(read_shard(baseline_store, first.filename), shifted)
        with pytest.raises(FederationError, match="double-count"):
            federate_stores([LocalSource(fleet[0].directory)], dest)

    def test_incompatible_table_rejected(self, tmp_path, baseline_store):
        other, _ = build_synthetic_store(
            tmp_path / "other", k=2, n_runs=16, n_preds=3, seed=5
        )
        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        with pytest.raises(FederationError, match="predicate table"):
            federate_stores([LocalSource(other.directory)], dest)


class TestIngestShardBytes:
    def test_checksum_mismatch_refused(self, tmp_path, baseline_store):
        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        entry = baseline_store.manifest.shards[0]
        with pytest.raises(ShardIntegrityError):
            dest.ingest_shard_bytes(b"not the shard", entry)
        # Refusal leaves no trace: no file, no pending file, no entry.
        assert dest.manifest.find(entry.filename) is None
        assert not any(
            name.startswith(entry.filename)
            for name in os.listdir(dest.directory)
            if name != "manifest.json"
        )

    def test_entry_without_digest_refused(self, tmp_path, baseline_store):
        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        entry = dataclasses.replace(
            baseline_store.manifest.shards[0], sha256=None
        )
        with pytest.raises(ValueError, match="digest"):
            dest.ingest_shard_bytes(
                read_shard(baseline_store, entry.filename), entry
            )

    def test_create_like_copies_identity(self, tmp_path, baseline_store):
        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        for attr in ("subject", "table_sha", "config_sha", "plan", "format_version"):
            assert getattr(dest.manifest, attr) == getattr(
                baseline_store.manifest, attr
            )
        assert dest.manifest.shards == []
        with pytest.raises(FileExistsError):
            ShardStore.create_like(str(tmp_path / "dest"), baseline_store.manifest)


class TestFederationFaults:
    def test_fetch_error_retried(self, tmp_path, baseline_store):
        injector = FaultInjector(
            (Fault("fed-fetch-error", chunk=0), Fault("fed-fetch-error", chunk=2))
        )
        _, _, dest, report = _federate_fleet(
            tmp_path, baseline_store, 2, faults=injector, **FAST
        )
        assert report.clean
        assert report.retries == 2
        assert_federated_equals_baseline(dest, baseline_store, jobs=(1,))

    def test_corrupt_fetch_caught_and_retried(self, tmp_path, baseline_store):
        injector = FaultInjector((Fault("fed-corrupt-fetch", chunk=1),))
        _, _, dest, report = _federate_fleet(
            tmp_path, baseline_store, 2, faults=injector, **FAST
        )
        assert report.clean
        assert report.retries == 1
        assert_federated_equals_baseline(dest, baseline_store, jobs=(1,))

    def test_exhausted_retries_skip_with_audited_reason(
        self, tmp_path, baseline_store
    ):
        injector = FaultInjector(
            tuple(
                Fault("fed-fetch-error", chunk=0, attempt=a) for a in range(3)
            )
        )
        _, _, dest, report = _federate_fleet(
            tmp_path, baseline_store, 2, faults=injector, max_attempts=3, **FAST
        )
        assert not report.clean
        assert len(report.skipped) == 1
        record = report.skipped[0]
        first = baseline_store.manifest.shards[0]
        assert record.filename == first.filename
        assert record.reason == "fetch-error"
        assert record.seed_start == first.seed_start
        # The skip is audited in the destination, not just reported.
        reason_path = os.path.join(
            dest.directory, "quarantine", f"{first.filename}.reason.json"
        )
        assert json.load(open(reason_path))["reason"] == "fetch-error"
        events = [r["event"] for r in dest.read_log()]
        assert "federate-skip" in events
        # Everything else landed; only the injected range is missing.
        assert shard_essence(dest) == shard_essence(baseline_store)[1:]


class TestServeEndpoints:
    @pytest.fixture
    def server(self, tmp_path, baseline_store):
        """A daemon fronting a store pre-seeded with baseline shards."""
        from repro.serve import FeedbackServer
        from repro.serve.server import CollectionService
        from repro.subjects.ccrypt import CcryptSubject

        store = distribute(baseline_store, [tmp_path / "daemon"])[0]
        service = CollectionService(
            ShardStore.open(store.directory), CcryptSubject()
        )
        server = FeedbackServer(service)
        server.start()
        yield server
        server.close(drain=False)

    def test_manifest_endpoint(self, server, baseline_store):
        with urllib.request.urlopen(f"{server.url}/manifest") as response:
            document = json.loads(response.read())
        assert document["schema"] == MANIFEST_SCHEMA
        manifest = ShardManifest.from_json(document["manifest"])
        assert [e.sha256 for e in manifest.shards] == [
            e.sha256 for e in baseline_store.manifest.shards
        ]

    def test_shard_endpoint_serves_exact_bytes(self, server, baseline_store):
        entry = baseline_store.manifest.shards[0]
        with urllib.request.urlopen(
            f"{server.url}/shards/{entry.filename}"
        ) as response:
            data = response.read()
            assert response.headers["X-Repro-Sha256"] == entry.sha256
        assert data == read_shard(baseline_store, entry.filename)

    def test_unregistered_shard_404s(self, server):
        for name in ("nope.npz", "..%2Fmanifest.json", "ingest_wal.jsonl"):
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(f"{server.url}/shards/{name}")
            assert exc.value.code == 404

    def test_http_federation_matches_local(self, tmp_path, server, baseline_store):
        source = HTTPSource(server.url)
        dest = ShardStore.create_like(
            str(tmp_path / "http-dest"), source.manifest()
        )
        report = federate_stores([source], dest)
        assert report.clean
        assert_federated_equals_baseline(dest, baseline_store, jobs=(1,))
        assert all(e.source == source.label for e in dest.manifest.shards)
        assert cross_audit(dest, [source]).clean

    def test_open_source_picks_transport(self, tmp_path):
        assert isinstance(open_source("http://127.0.0.1:1/"), HTTPSource)
        assert isinstance(open_source(str(tmp_path)), LocalSource)


class TestFetchErrors:
    def test_missing_file_reason(self, tmp_path, baseline_store):
        source = LocalSource(baseline_store.directory)
        entry = dataclasses.replace(
            baseline_store.manifest.shards[0], filename="gone.npz"
        )
        with pytest.raises(FederationFetchError) as exc:
            source.fetch(entry)
        assert exc.value.reason == "missing-file"

    def test_unreachable_daemon_fetch(self, baseline_store):
        source = HTTPSource("http://127.0.0.1:9", timeout=0.2)
        with pytest.raises(FederationError):
            source.manifest()
        with pytest.raises(FederationFetchError):
            source.fetch(baseline_store.manifest.shards[0])

    def test_non_store_directory_rejected(self, tmp_path):
        with pytest.raises(FederationError, match="not a shard store"):
            LocalSource(str(tmp_path)).manifest()


class TestCli:
    def test_federate_subcommand_end_to_end(
        self, tmp_path, baseline_store, capsys
    ):
        fleet = distribute(
            baseline_store, [tmp_path / f"f{i}" for i in range(3)]
        )
        dest_dir = str(tmp_path / "dest")
        code = cli_main(
            ["federate", *(s.directory for s in fleet), dest_dir]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"{baseline_store.n_shards} shards pulled" in out
        assert "fully replicated" in out
        assert_federated_equals_baseline(
            ShardStore.open(dest_dir), baseline_store, jobs=(1,)
        )

    def test_exit_1_on_skips(self, tmp_path, baseline_store, capsys):
        fleet = distribute(baseline_store, [tmp_path / "src"])
        entry = fleet[0].manifest.shards[0]
        os.unlink(os.path.join(fleet[0].directory, entry.filename))
        code = cli_main(
            [
                "federate", fleet[0].directory, str(tmp_path / "dest"),
                "--max-attempts", "1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "skipped" in captured.err
        assert "missing-file" in captured.err

    def test_exit_2_on_structural_refusal(self, tmp_path, baseline_store, capsys):
        other, _ = build_synthetic_store(
            tmp_path / "other", k=1, n_runs=8, n_preds=3, seed=9
        )
        fleet = distribute(baseline_store, [tmp_path / "src"])
        code = cli_main(
            ["federate", fleet[0].directory, other.directory, str(tmp_path / "d")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_fault_flag_requires_testing(self, tmp_path, capsys):
        code = cli_main(
            [
                "federate", str(tmp_path / "a"), str(tmp_path / "b"),
                "--inject-fault", "fed-fetch-error@0",
            ]
        )
        assert code == 2
        assert "--testing" in capsys.readouterr().err

    def test_injected_fault_via_cli(self, tmp_path, baseline_store, capsys):
        fleet = distribute(baseline_store, [tmp_path / "src"])
        code = cli_main(
            [
                "federate", fleet[0].directory, str(tmp_path / "dest"),
                "--testing", "--inject-fault", "fed-fetch-error@0",
            ]
        )
        assert code == 0
        assert "1 retries" in capsys.readouterr().out
