"""Corruption paths in federation: damaged sources degrade the merge
with an audited reason -- they are never replicated into the destination.
"""

import dataclasses
import json
import os

import pytest

from repro.federate import LocalSource, cross_audit, federate_stores
from repro.store import ShardStore
from repro.store.faults import damage_flip_bytes, damage_truncate

from tests.federate.conftest import (
    assert_federated_equals_baseline,
    distribute,
    shard_essence,
)

FAST = dict(backoff_base=0.001, backoff_cap=0.002, max_attempts=3)


def _skip_reason(dest, filename):
    path = os.path.join(dest.directory, "quarantine", f"{filename}.reason.json")
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


class TestDamagedSourceShards:
    @pytest.mark.parametrize(
        "damage", [damage_flip_bytes, lambda p: damage_truncate(p, keep_fraction=0.4)]
    )
    def test_damaged_shard_skipped_never_replicated(
        self, tmp_path, baseline_store, damage
    ):
        src = distribute(baseline_store, [tmp_path / "src"])[0]
        victim = src.manifest.shards[2]
        damage(os.path.join(src.directory, victim.filename))

        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        report = federate_stores([LocalSource(src.directory)], dest, **FAST)

        assert not report.clean
        assert [r.filename for r in report.skipped] == [victim.filename]
        assert report.skipped[0].reason == "checksum-mismatch"
        assert report.skipped[0].n_runs == victim.n_runs
        # The damaged bytes never reached the destination -- no file, no
        # pending file, no manifest entry; just the audited reason.
        assert dest.manifest.find(victim.filename) is None
        assert not os.path.exists(os.path.join(dest.directory, victim.filename))
        assert _skip_reason(dest, victim.filename)["reason"] == "checksum-mismatch"
        # Everything healthy still merged bit-exactly.
        expected = [
            e for e in shard_essence(baseline_store) if e[0] != victim.filename
        ]
        assert shard_essence(dest) == expected
        assert dest.audit().clean

    def test_healthy_duplicate_wins_over_damaged_copy(
        self, tmp_path, baseline_store
    ):
        # Source "a-src" (tried first: smaller label) holds a damaged
        # copy; "b-src" the healthy one.  Candidate rotation must land
        # every seed range, making the merge clean despite the damage.
        damaged = distribute(baseline_store, [tmp_path / "a-src"])[0]
        distribute(baseline_store, [tmp_path / "b-src"])
        victim = damaged.manifest.shards[0]
        damage_flip_bytes(os.path.join(damaged.directory, victim.filename))

        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        report = federate_stores(
            [
                LocalSource(str(tmp_path / "a-src")),
                LocalSource(str(tmp_path / "b-src")),
            ],
            dest,
            **FAST,
        )
        assert report.clean
        assert report.retries == 1
        assert_federated_equals_baseline(dest, baseline_store, jobs=(1,))
        # Provenance shows the fallback: the victim came from b-src.
        by_name = {e.filename: e.source for e in dest.manifest.shards}
        assert by_name[victim.filename] == str(tmp_path / "b-src")

    def test_quarantined_source_shard_not_replicated(
        self, tmp_path, baseline_store
    ):
        # A source that already audited its damage exports a manifest
        # without the bad shard; federation replicates the survivors and
        # cross_audit stays clean (nothing is "missing" -- the source no
        # longer claims the range).
        src = distribute(baseline_store, [tmp_path / "src"])[0]
        victim = src.manifest.shards[1]
        damage_flip_bytes(os.path.join(src.directory, victim.filename))
        audit = src.audit()
        assert [r.filename for r in audit.quarantined] == [victim.filename]

        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        source = LocalSource(src.directory)
        report = federate_stores([source], dest, **FAST)
        assert report.clean
        assert dest.manifest.find(victim.filename) is None
        assert shard_essence(dest) == [
            e for e in shard_essence(baseline_store) if e[0] != victim.filename
        ]
        assert cross_audit(dest, [source]).clean

    def test_missing_source_file_skipped_with_reason(
        self, tmp_path, baseline_store
    ):
        src = distribute(baseline_store, [tmp_path / "src"])[0]
        victim = src.manifest.shards[0]
        os.unlink(os.path.join(src.directory, victim.filename))

        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        report = federate_stores([LocalSource(src.directory)], dest, **FAST)
        assert [r.reason for r in report.skipped] == ["missing-file"]
        assert _skip_reason(dest, victim.filename)["reason"] == "missing-file"

    def test_count_mismatch_detected(self, tmp_path, baseline_store):
        # A source manifest lying about run counts (bytes intact, entry
        # wrong) is caught by the end-to-end verification, not trusted.
        src = distribute(baseline_store, [tmp_path / "src"])[0]
        victim = src.manifest.shards[0]
        src.manifest.shards[0] = dataclasses.replace(
            victim, n_runs=victim.n_runs - 1
        )
        src.manifest.save(src.manifest_path)

        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        report = federate_stores([LocalSource(src.directory)], dest, **FAST)
        assert [r.reason for r in report.skipped] == ["count-mismatch"]
        assert dest.manifest.find(victim.filename) is None

    def test_skips_surface_in_cross_audit(self, tmp_path, baseline_store):
        src = distribute(baseline_store, [tmp_path / "src"])[0]
        victim = src.manifest.shards[0]
        damage_flip_bytes(os.path.join(src.directory, victim.filename))

        dest = ShardStore.create_like(
            str(tmp_path / "dest"), baseline_store.manifest
        )
        source = LocalSource(src.directory)
        federate_stores([source], dest, **FAST)
        audit = cross_audit(dest, [source])
        # The destination itself is healthy, but the fleet is not fully
        # replicated: the skipped range shows up as missing.
        assert audit.dest.clean
        assert not audit.clean
        assert audit.sources[0].missing == [victim.filename]
