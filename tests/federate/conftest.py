"""Shared federation-test machinery.

The recurring shape: one *baseline* store collected as a single daemon
would, the same shards distributed across a *fleet* of source stores,
and an assertion that federating the fleet reproduces the baseline bit
for bit.  Distribution goes through
:meth:`~repro.store.shards.ShardStore.ingest_shard_bytes` with the
baseline's own entries, so fleet shards are byte-identical to baseline
shards by construction -- exactly what N daemons collecting disjoint
seed ranges produce (archives are byte-deterministic; see
``test_acceptance_matrix`` for the end-to-end version where daemons
really collect).
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.core.engine import AnalysisEngine
from repro.store import ShardStore

from tests.conftest import build_synthetic_store

#: Every float/int column a PredicateScores carries; compared by exact
#: bytes in the differential assertions (mirrors tests/serve).
SCORE_FIELDS = (
    "F", "S", "F_obs", "S_obs", "failure", "context", "increase",
    "increase_se", "increase_lo", "increase_hi", "pf", "ps", "z",
    "z_defined", "defined",
)


def shard_essence(store):
    """The identity-defining view of a store's membership."""
    return [
        (e.filename, e.seed_start, e.n_runs, e.num_failing, e.sha256)
        for e in store.manifest.shards
    ]


def read_shard(store, filename: str) -> bytes:
    with open(os.path.join(store.directory, filename), "rb") as handle:
        return handle.read()


def distribute(baseline, directories, assign=None):
    """Spread a baseline store's shards across fresh stores.

    ``assign(index)`` maps shard ordinal to a directory ordinal
    (defaults to round-robin).  Returns the opened stores.  Provenance
    is intentionally *not* set: these stand in for daemons that
    collected the shards locally.
    """
    assign = assign or (lambda i: i % len(directories))
    stores = [
        ShardStore.create_like(str(d), baseline.manifest) for d in directories
    ]
    for i, entry in enumerate(baseline.manifest.shards):
        stores[assign(i)].ingest_shard_bytes(
            read_shard(baseline, entry.filename),
            dataclasses.replace(entry, source=None),
        )
    return stores


def assert_federated_equals_baseline(dest, baseline, jobs=(1, 2)):
    """The PR's central claim: merged store == single-daemon store.

    Checks shard membership (names, seed ranges, digests), raw archive
    bytes, streamed sufficient statistics, and every scores column by
    exact bytes, at multiple engine worker counts.
    """
    assert shard_essence(dest) == shard_essence(baseline)
    for entry in baseline.manifest.shards:
        assert read_shard(dest, entry.filename) == read_shard(
            baseline, entry.filename
        )
    for n in jobs:
        engine = AnalysisEngine(jobs=n)
        stats_a = engine.store_stats(baseline)
        stats_b = engine.store_stats(dest)
        np.testing.assert_array_equal(stats_a.F, stats_b.F)
        np.testing.assert_array_equal(stats_a.S, stats_b.S)
        np.testing.assert_array_equal(stats_a.F_obs, stats_b.F_obs)
        np.testing.assert_array_equal(stats_a.S_obs, stats_b.S_obs)
        assert stats_a.num_failing == stats_b.num_failing
        assert stats_a.num_successful == stats_b.num_successful
        scoring_a = engine.score_stats(stats_a)
        scoring_b = engine.score_stats(stats_b)
        for field in SCORE_FIELDS:
            assert (
                getattr(scoring_a.scores, field).tobytes()
                == getattr(scoring_b.scores, field).tobytes()
            )
        assert scoring_a.pvalues.tobytes() == scoring_b.pvalues.tobytes()
        assert (
            scoring_a.pruning.kept.tolist() == scoring_b.pruning.kept.tolist()
        )


@pytest.fixture
def baseline_store(tmp_path):
    """A 6-shard synthetic baseline store (48 runs, seeds 0..47)."""
    store, _ = build_synthetic_store(
        tmp_path / "baseline", k=6, n_runs=48, n_preds=5, seed=11
    )
    return store
