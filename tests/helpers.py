"""Shared test utilities: compact builders for synthetic report sets."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.predicates import PredicateTable
from repro.core.reports import ReportBuilder, ReportSet


def make_table(n_predicates: int) -> PredicateTable:
    """A table of ``n_predicates`` single-predicate custom sites.

    Site ``i`` carries exactly predicate ``i`` (named ``P<i>``), so tests
    can treat site and predicate indices interchangeably.
    """
    table = PredicateTable()
    for i in range(n_predicates):
        table.add_custom_site("test", i + 1, f"P{i}", [f"P{i}"])
    return table


def make_reports(
    n_predicates: int,
    runs: Sequence[Tuple[bool, Iterable[int], Optional[Iterable[int]]]],
    stacks: Optional[Sequence[Optional[Tuple[str, ...]]]] = None,
) -> ReportSet:
    """Build a report set from per-run specs.

    Each run is ``(failed, true_predicates, observed_sites)``; when
    ``observed_sites`` is ``None`` it defaults to *all* sites (complete
    observation, i.e. no sampling).  Predicates listed as true are always
    also observed.
    """
    table = make_table(n_predicates)
    builder = ReportBuilder(table)
    for idx, (failed, true_preds, observed) in enumerate(runs):
        true_set: Set[int] = set(true_preds)
        if observed is None:
            obs_set: Set[int] = set(range(n_predicates))
        else:
            obs_set = set(observed) | true_set
        stack = None
        if stacks is not None:
            stack = stacks[idx]
        builder.add_run(
            failed,
            {s: 1 for s in obs_set},
            {p: 1 for p in true_set},
            stack=stack,
        )
    return builder.build()


def make_population(n_preds: int = 4, n_runs: int = 24, seed: int = 0) -> ReportSet:
    """A deterministic synthetic population with mixed outcomes.

    Failure rate ~40%; predicates fire more often in failing runs (60%
    vs 20%) under ~80% observation, so scores are non-degenerate.
    """
    rng = random.Random(seed)
    runs = []
    for _ in range(n_runs):
        failed = rng.random() < 0.4
        true = {i for i in range(n_preds) if rng.random() < (0.6 if failed else 0.2)}
        observed = {i for i in range(n_preds) if rng.random() < 0.8} | true
        runs.append((failed, true, observed))
    return make_reports(n_preds, runs)


def split_reports(reports: ReportSet, k: int) -> List[ReportSet]:
    """Partition a report set into k contiguous shards."""
    bounds = np.linspace(0, reports.n_runs, k + 1).astype(int)
    parts = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        mask = np.zeros(reports.n_runs, dtype=bool)
        mask[lo:hi] = True
        parts.append(reports.subset(mask))
    return parts


def run_pattern(
    reports: ReportSet, predicate_index: int
) -> List[int]:
    """Sorted run indices where the predicate was observed true."""
    return sorted(reports.runs_where_true(predicate_index).tolist())
