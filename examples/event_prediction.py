"""Section 5 extension: isolating predictors of *any* program event.

"While we have focused on bug finding, the same ideas can be used to
isolate predictors of any program event.  For example, we could
potentially look for early predictors of when the program will ... send
a message on the network, write to disk, or suspend itself."

Here we relabel RHYTHMBOX runs: instead of crash/no-crash, a run is
"interesting" when the session ended with a db version above a
threshold (a stand-in for "the program wrote to disk").  The identical
machinery then finds early predictors of that event.

Run with:  python examples/event_prediction.py [n_runs]
"""

import random
import os
import sys

import numpy as np

from repro.core.elimination import eliminate
from repro.core.pruning import prune_predicates
from repro.core.reports import ReportSet
from repro.harness.runner import run_trials
from repro.harness.tables import format_predictor_table
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.subjects.rhythmbox import RhythmboxSubject
from repro.subjects.rhythmbox.subject import generate_job
from repro.subjects.base import Subject


class QuietRhythmbox(Subject):
    """The rhythmbox program, labelling runs by an *event*, not a crash.

    The entry returns ``(processed, signals, db_version)``; we declare a
    run "failing" (= event occurred) when the final db version is high.
    Crashing runs are excluded up front so the event labelling is pure.
    """

    name = "rhythmbox-event"
    entry = "main"
    # The program still records its seeded races when they happen; we
    # keep them in the truth vocabulary even though this analysis is
    # about a different event entirely.
    bug_ids = ("rb1", "rb2")

    def __init__(self, threshold: int = 3) -> None:
        self.threshold = threshold
        self._inner = RhythmboxSubject()

    def source(self) -> str:
        return self._inner.source()

    def generate_input(self, rng: random.Random):
        return generate_job(rng)

    def oracle(self, program_input, output) -> bool:
        # "success" = the event did NOT occur.
        return output[2] < self.threshold


def main(n_runs: int = 2000) -> None:
    subject = QuietRhythmbox(threshold=3)
    program = instrument_source(subject.source(), subject.name)
    print(f"running {n_runs} sessions; event = db version reaches "
          f"{subject.threshold} (heavy library writes)...")

    reports, _ = run_trials(
        subject, program, n_runs=n_runs, plan=SamplingPlan.uniform(0.2), seed=0
    )

    # Drop crashed runs (they carry stacks); we only study the event.
    clean = np.array([s is None for s in reports.stacks])
    reports = reports.subset(clean)
    print(f"{reports.n_runs} clean runs, event occurred in "
          f"{reports.num_failing} of them")

    pruning = prune_predicates(reports)
    result = eliminate(reports, candidates=pruning.kept, max_predictors=6)
    print("\nearly predictors of the event:")
    print(format_predictor_table(result))
    print("\nExpected shape: predicates about db_update activity "
          "(delta, count, version) predict the event; playback "
          "predicates do not.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1
         else int(os.environ.get("REPRO_EXAMPLE_RUNS", 2000)))
