"""The Section 4.1 validation experiment, in miniature.

Runs the MOSS analogue (winnowing plagiarism detector with 9 seeded
bugs) on random submissions under adaptive sampling, then prints the
Table 3-style predictor list with ground-truth bug co-occurrence
columns, and each top predictor's classification (bug / sub-bug /
super-bug).

Run with:  python examples/moss_validation.py [n_runs]
"""

import os
import sys

from repro.core.truth import classify_predictor, cooccurrence_table, dominant_bug
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.tables import format_predictor_table, format_summary_table
from repro.subjects.moss import MossSubject


def main(n_runs: int = 1500) -> None:
    subject = MossSubject()
    print(f"running {n_runs} random MOSS submissions (adaptive sampling)...")
    result = run_experiment(
        Experiment(
            subject=subject,
            n_runs=n_runs,
            sampling="adaptive",
            training_runs=min(150, n_runs),
            seed=0,
            max_predictors=15,
        )
    )

    print("\n== summary (Table 2 row) ==")
    print(format_summary_table([result.summary()]))

    selected = [s.predicate.index for s in result.elimination.selected]
    co = cooccurrence_table(result.reports, result.truth, selected)
    print("\n== predictors with per-bug failing-run counts (Table 3) ==")
    print(format_predictor_table(result.elimination, co, bug_ids=subject.bug_ids))

    print("\n== predictor grading against ground truth ==")
    for sel in result.elimination.selected:
        kind = classify_predictor(result.reports, result.truth, sel.predicate.index)
        dom = dominant_bug(result.reports, result.truth, sel.predicate.index)
        dom_text = f"-> {dom[0]} ({dom[1]} failures)" if dom else "-> (none)"
        print(f"  #{sel.rank:<2d} [{kind:^9s}] {dom_text:<24s} {sel.predicate.name}")

    occurred = result.truth.occurrence_counts()
    print("\n== ground truth: bug occurrence counts (any outcome) ==")
    for bug, count in occurred.items():
        print(f"  {bug}: {count}")
    print("\nNote: moss8 never triggers (the paper's bug #8) and moss7 "
          "never independently causes a failure (the paper's bug #7).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1
         else int(os.environ.get("REPRO_EXAMPLE_RUNS", 1500)))
