"""Quickstart: isolate a bug in 60 lines.

Instrument a small buggy program, run it on random inputs, and let the
statistical debugging algorithm point at the cause.

Run with:  python examples/quickstart.py
"""

import os
import random

from repro import ReportBuilder, eliminate, prune_predicates
from repro.core.truth import GroundTruth
from repro.harness.runner import run_trials
from repro.harness.tables import format_predictor_table
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.subjects.base import Subject

# A program with a latent bug: the "fast path" skips the bounds check.
SOURCE = '''
def lookup(table, key, use_fast_path):
    if use_fast_path:
        index = key % 10          # BUG: table may be smaller than 10
    else:
        index = key % len(table)
    return table[index]

def main(job):
    table, key, fast = job
    return lookup(table, key, fast)
'''


class QuickstartSubject(Subject):
    """Random tables of size 4-12; the fast path crashes on small ones."""

    name = "quickstart"
    entry = "main"
    bug_ids = ()

    def source(self) -> str:
        return SOURCE

    def generate_input(self, rng: random.Random):
        size = rng.randint(4, 12)
        table = [rng.randint(0, 99) for _ in range(size)]
        return (table, rng.randint(0, 1000), rng.random() < 0.3)


def main() -> None:
    subject = QuickstartSubject()

    # 1. Instrument (branches / returns / scalar-pairs, Section 2).
    program = instrument_source(subject.source(), subject.name)
    print(f"instrumented: {program.table.n_sites} sites, "
          f"{program.table.n_predicates} predicates")

    # 2. Run 2,000 random trials under 1/10 sampling.
    n_runs = int(os.environ.get("REPRO_EXAMPLE_RUNS", 2000))
    reports, _ = run_trials(
        subject, program, n_runs=n_runs, plan=SamplingPlan.uniform(0.1), seed=0
    )
    print(f"collected {reports.n_runs} runs, {reports.num_failing} failing")

    # 3. Prune predicates whose Increase interval is not above zero.
    pruning = prune_predicates(reports)
    print(f"pruning: {pruning.n_initial} -> {pruning.n_kept} predicates "
          f"({pruning.reduction:.1%} discarded)")

    # 4. Iterative redundancy elimination.
    result = eliminate(reports, candidates=pruning.kept, max_predictors=5)
    print("\ntop failure predictors:")
    print(format_predictor_table(result))
    print("\nThe top predicate should implicate the fast path "
          "(use_fast_path / index vs table size).")


if __name__ == "__main__":
    main()
