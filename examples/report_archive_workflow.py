"""Decoupled collection and analysis, like a real CBI deployment.

The deployed half of CBI collects feedback reports from user machines;
the analysis half runs later, elsewhere.  This example mirrors that
split:

1. collect a BC population on all cores (`run_trials_parallel`);
2. archive it to one ``.npz`` file (`save_reports`);
3. in the "lab", load the archive and run the full analysis -- pruning,
   elimination, affinity grouping -- without touching the subject.

Run with:  python examples/report_archive_workflow.py [n_runs]
"""

import os
import sys
import tempfile

from repro import eliminate, load_reports, prune_predicates, save_reports
from repro.core.affinity import affinity_groups
from repro.core.truth import dominant_bug
from repro.harness.parallel import run_trials_parallel
from repro.harness.tables import format_predictor_table
from repro.instrument.sampling import SamplingPlan
from repro.subjects.bc import BcSubject


def main(n_runs: int = 1500) -> None:
    subject = BcSubject()

    print(f"collection site: running {n_runs} bc programs on 4 workers...")
    reports, truth = run_trials_parallel(
        subject, n_runs, SamplingPlan.uniform(0.1), seed=0, jobs=4
    )
    archive = os.path.join(tempfile.gettempdir(), "bc_reports.npz")
    save_reports(archive, reports, truth)
    size_kb = os.path.getsize(archive) // 1024
    print(f"archived {reports.n_runs} runs ({reports.num_failing} failing) "
          f"to {archive} ({size_kb} KiB)")

    print("\nanalysis site: loading the archive...")
    loaded, loaded_truth = load_reports(archive)
    pruning = prune_predicates(loaded)
    result = eliminate(loaded, candidates=pruning.kept, max_predictors=6)
    print(f"pruning: {pruning.n_initial} -> {pruning.n_kept}; "
          f"selected {len(result)} predictors")
    print(format_predictor_table(result))

    if len(result) > 1:
        groups = affinity_groups(
            loaded, [s.predicate.index for s in result.selected]
        )
        print(f"\naffinity grouping: {len(groups)} distinct bug group(s)")
        for group in groups:
            names = [loaded.table.predicates[i].name for i in group]
            print("  -", " | ".join(names))

    if loaded_truth is not None and result.selected:
        dom = dominant_bug(loaded, loaded_truth, result.selected[0].predicate.index)
        if dom:
            print(f"\nground truth confirms: top predictor dominates {dom[0]} "
                  f"({dom[1]} failing runs)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1
         else int(os.environ.get("REPRO_EXAMPLE_RUNS", 1500)))
