"""Reproducing the paper's worked example (Section 4.2.3): EXIF.

Shows the full debugging workflow on the EXIF analogue:

1. the crash stacks alone point at the *save* path (memcpy) and give
   little insight;
2. the isolation algorithm's predictor points at ``o + s > buf_size``
   in the *load* path -- the actual cause;
3. the predictor's affinity list surfaces the related predicates an
   engineer would inspect next.

Run with:  python examples/exif_bug_hunt.py [n_runs]
"""

import os
import sys
from collections import Counter

from repro.core.affinity import affinity_list
from repro.core.truth import cooccurrence_table, dominant_bug
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.tables import format_predictor_table
from repro.subjects.exif import ExifSubject


def main(n_runs: int = 4000) -> None:
    subject = ExifSubject()
    print(f"running {n_runs} random EXIF blobs...")
    result = run_experiment(
        Experiment(
            subject=subject,
            n_runs=n_runs,
            sampling="adaptive",
            training_runs=min(150, n_runs),
            seed=0,
            max_predictors=10,
        )
    )
    reports, truth = result.reports, result.truth

    print("\n== step 1: what the crash stacks say ==")
    stacks = Counter(s for s in reports.stacks if s)
    for stack, count in stacks.most_common(5):
        print(f"  {count:>4d} x  {' -> '.join(stack)}")
    print("  (the maker-note crash is inside mnote_canon_save/memcpy -- "
          "nowhere near the cause)")

    print("\n== step 2: what statistical debugging says (Table 6) ==")
    selected = [s.predicate.index for s in result.elimination.selected]
    co = cooccurrence_table(reports, truth, selected)
    print(format_predictor_table(result.elimination, co, bug_ids=subject.bug_ids))

    print("\n== step 3: affinity list of the top predictor ==")
    if selected:
        top = selected[0]
        dom = dominant_bug(reports, truth, top)
        print(f"anchor: {reports.table.predicates[top].name} "
              f"(dominant bug: {dom[0] if dom else '?'})")
        for entry in affinity_list(
            reports, top, candidates=result.pruning.kept, top=6
        ):
            print(f"  drop {entry.drop:6.3f}  {entry.predicate.name}")

    print("\nEach predictor points at a distinct bug; the exif3 predictor "
          "is the load-phase bounds check, matching the paper's analysis.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1
         else int(os.environ.get("REPRO_EXAMPLE_RUNS", 4000)))
