"""The paper's deployment shape, end to end on one machine.

"The Cooperative Bug Isolation Project ... collects feedback reports
from instrumented applications running on end-user machines."

Workflow demonstrated here on CCRYPT:

1. start a collection daemon over a fresh shard store (in-process, on
   an ephemeral port -- the same server ``repro-cbi serve`` runs);
2. two "client machines" run seeded trials over disjoint seed ranges,
   spool their reports to disk, and upload them in gzipped batches --
   one of them through an injected flaky network (a refused connection
   it must retry);
3. poll the live ``GET /scores`` ranking as the population streams in;
4. arm an :class:`~repro.core.online.OnlineMonitor` from the live
   ranking and replay fresh runs: crashes announce themselves before
   they happen, closing the paper's feedback loop.

Run with:  python examples/cooperative_collection.py
"""

import os
import random
import tempfile

from repro.core.online import OnlineMonitor
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.serve import (
    CollectionService,
    FeedbackServer,
    collect_and_submit,
    fetch_scores,
    watched_from_scores,
)
from repro.store import ShardStore
from repro.store.faults import FaultInjector, parse_faults
from repro.subjects import base
from repro.subjects.ccrypt import CcryptSubject


def main() -> None:
    subject = CcryptSubject()
    n_runs = int(os.environ.get("REPRO_EXAMPLE_RUNS", 400))
    n_replays = int(os.environ.get("REPRO_EXAMPLE_REPLAYS", 100))
    per_client = n_runs // 2

    program = instrument_source(subject.source(), subject.name)
    plan = SamplingPlan.full()
    workdir = tempfile.mkdtemp(prefix="repro-coop-")

    print("phase 1: starting the collection daemon...")
    store = ShardStore.open_or_create(
        os.path.join(workdir, "store"), subject.name, program.table, plan
    )
    service = CollectionService(store, subject, batch_runs=50)
    server = FeedbackServer(service, port=0).start()
    print(f"  serving {subject.name} on {server.url}")

    try:
        print(f"\nphase 2: two clients upload {per_client} runs each...")
        smooth = collect_and_submit(
            subject, program, plan, server.url,
            os.path.join(workdir, "spool-a"), per_client, seed=0,
        )
        print(f"  client A: {len(smooth.accepted)} accepted "
              f"({smooth.requests} requests)")
        # Client B's first POST is refused; the spool + backoff retry
        # make the flaky network invisible in the final population.
        flaky = collect_and_submit(
            subject, program, plan, server.url,
            os.path.join(workdir, "spool-b"), per_client, seed=per_client,
            faults=FaultInjector(parse_faults("net-refuse@0")),
            backoff_base=0.05, jitter=0.0,
        )
        print(f"  client B: {len(flaky.accepted)} accepted over a flaky "
              f"network ({flaky.retries} retries)")

        print("\nphase 3: the live ranking over the streamed population:")
        scores = fetch_scores(server.url, k=3)
        print(f"  {scores['n_runs']} runs committed, "
              f"{scores['num_failing']} failing")
        for entry in scores["predicates"]:
            print(f"  imp={entry['importance']:.3f} "
                  f"F={entry['F']:>4} S={entry['S']:>4}  {entry['name']}")

        print("\nphase 4: arming an online monitor from the live scores...")
        watched = watched_from_scores(scores, k=3)
        monitor = OnlineMonitor(program.runtime, watched)
        monitor.install()
        rng = random.Random(999)
        predicted = unpredicted = 0
        try:
            for i in range(n_replays):
                job = subject.generate_input(rng)
                monitor.reset()
                base.begin_truth_capture()
                program.begin_run(SamplingPlan.full(), seed=1_000_000 + i)
                crashed = False
                try:
                    program.func(subject.entry)(job)
                except Exception:
                    crashed = True
                program.end_run()
                base.end_truth_capture()
                if crashed:
                    predicted += int(monitor.fired)
                    unpredicted += int(not monitor.fired)
        finally:
            monitor.uninstall()
        print(f"  crashes predicted in-flight: "
              f"{predicted}/{predicted + unpredicted}")
    finally:
        drained = server.close(drain=True)

    print(f"\ndaemon drained {drained} pending reports on shutdown; "
          f"store holds {store.n_shards} shards, {store.n_runs} runs.")
    print("The committed store is bit-identical to a local collection of "
          "the same seeds -- retries, faults and all.")


if __name__ == "__main__":
    main()
