"""Section 5 extension: using failure predictors on-line.

"Knowing that a strong predictor of program failure has become true may
enable preemptive action."

Workflow demonstrated here on CCRYPT:

1. run an offline experiment to learn the top failure predictors;
2. install an :class:`~repro.core.online.OnlineMonitor` watching them;
3. replay fresh runs: the monitor raises the alarm the moment the
   cause condition (stdin exhausted at the overwrite prompt) is
   observed -- before the crash -- so a supervisor could, e.g., decline
   the overwrite instead of dying.

Run with:  python examples/online_monitor.py
"""

import os
import random

from repro.core.online import monitor_from_elimination
from repro.harness.experiment import Experiment, run_experiment
from repro.instrument.sampling import SamplingPlan
from repro.subjects.ccrypt import CcryptSubject
from repro.subjects import base


def main() -> None:
    subject = CcryptSubject()
    n_runs = int(os.environ.get("REPRO_EXAMPLE_RUNS", 1000))
    n_replays = int(os.environ.get("REPRO_EXAMPLE_REPLAYS", 400))
    print(f"phase 1: learning predictors offline ({n_runs} runs)...")
    result = run_experiment(
        Experiment(
            subject=subject,
            n_runs=n_runs,
            sampling="adaptive",
            training_runs=min(100, n_runs),
            seed=0,
            max_predictors=3,
        )
    )
    for sel in result.elimination.selected:
        print(f"  learned: imp={sel.effective.importance:.3f} "
              f"{sel.predicate.name}")

    print("\nphase 2: monitoring fresh runs...")
    program = result.program
    monitor = monitor_from_elimination(program.runtime, result.elimination, top=3)
    monitor.install()

    rng = random.Random(999)
    predicted_crashes = 0
    unpredicted_crashes = 0
    false_alarms = 0
    clean = 0
    try:
        for i in range(n_replays):
            job = subject.generate_input(rng)
            monitor.reset()
            base.begin_truth_capture()
            program.begin_run(SamplingPlan.full(), seed=10_000 + i)
            crashed = False
            try:
                program.func(subject.entry)(job)
            except Exception:
                crashed = True
            program.end_run()
            base.end_truth_capture()
            if crashed and monitor.fired:
                predicted_crashes += 1
            elif crashed:
                unpredicted_crashes += 1
            elif monitor.fired:
                false_alarms += 1
            else:
                clean += 1
    finally:
        monitor.uninstall()

    total_crashes = predicted_crashes + unpredicted_crashes
    print(f"  crashes predicted in-flight: {predicted_crashes}/{total_crashes}")
    print(f"  false alarms: {false_alarms}, clean runs: {clean}")
    if monitor.alerts:
        print(f"  last alert: {monitor.alerts[-1].predicate.name}")
    print("\nEvery crash should be preceded by an alert (the predictor is "
          "the cause condition), with few or no false alarms.")


if __name__ == "__main__":
    main()
