"""A factory-made subject, collected over the daemon, bug isolated.

The subject factory manufactures bug subjects from ordinary Python
packages: an import-hook loader instruments every module of the package
into one shared site table, and a deterministic mutation engine injects
a seeded bug stamped with ``record_bug`` for ground-truth grading.

Workflow demonstrated here on ``wrapx-swap1`` (the vendored text-
wrapping package with an operator-swap mutation):

1. build the mutated subject and its instrumented whole-package
   program;
2. start a collection daemon over a fresh shard store (the same server
   ``repro-cbi serve`` runs) and upload seeded client trials through
   the spool -> HTTP -> ingest path;
3. score the served store and grade every registered suspiciousness
   measure against the injected bug's ground-truth site;
4. assert the bug's predicate ranks in the top five for at least one
   measure -- the factory-smoke acceptance bar.

Run with:  python examples/factory_bug_hunt.py
"""

import os
import tempfile

from repro.cli import SUBJECTS
from repro.core.engine import AnalysisEngine
from repro.core.truth import faulty_predicate_mask
from repro.harness.bakeoff import rank_metrics
from repro.instrument.sampling import SamplingPlan
from repro.serve import CollectionService, FeedbackServer
from repro.serve.client import drain_spool, run_and_spool, ReportSpool
from repro.store import ShardStore

ISOLATION_RANK = 5


def main() -> None:
    n_runs = int(os.environ.get("REPRO_EXAMPLE_RUNS", 300))
    subject = SUBJECTS["wrapx-swap1"]()
    program = subject.build_program()
    plan = SamplingPlan.full()
    print(
        f"subject {subject.name}: kind={subject.kind}, "
        f"mutation={subject.mutation_class}, "
        f"{program.table.n_sites} sites / "
        f"{program.table.n_predicates} predicates"
    )

    workdir = tempfile.mkdtemp(prefix="repro-factory-")
    store_dir = os.path.join(workdir, "served")
    store = ShardStore.open_or_create(
        store_dir, subject.name, program.table, plan
    )
    service = CollectionService(store, subject, batch_runs=20)
    server = FeedbackServer(service, port=0).start()
    print(f"daemon listening on {server.url}")
    try:
        spool = ReportSpool(os.path.join(workdir, "spool"))
        run_and_spool(subject, program, plan, spool, n_runs, seed=0)
        result = drain_spool(
            spool,
            server.url,
            subject.name,
            program.table.signature(),
            batch_size=17,
        )
        print(f"daemon accepted {len(result.accepted)} reports")
    finally:
        server.close(drain=True)

    served = ShardStore.open(store_dir)
    engine = AnalysisEngine(jobs=1)
    stats = engine.store_stats(served)
    faulty = faulty_predicate_mask(program.table, subject.bug_sites())

    from repro.core import measures

    best = None
    for name in sorted(measures.available()):
        scoring = engine.score_stats(stats, measure=name)
        cell = rank_metrics(program.table, scoring.measure_values, faulty)
        rank = cell["rank_of_first_faulty_site"]
        print(
            f"  {name:<14} rank {rank:>4}   "
            f"top predicate: {cell['first_faulty_predicate']}"
        )
        if rank is not None and (best is None or rank < best):
            best = rank

    assert best is not None and best <= ISOLATION_RANK, (
        f"injected bug not isolated: best rank {best}"
    )
    print(f"injected bug isolated at rank {best} (<= {ISOLATION_RANK})")


if __name__ == "__main__":
    main()
